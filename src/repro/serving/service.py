"""The serving facade: queue in front, a generative engine behind.

:class:`RecommendationService` is the deployment-shaped entry point to any
generative recommender wrapped in a :class:`repro.serving.GenerativeEngine`
(LC-Rec, TIGER, P5-CID, or your own adapter): callers ``submit``
recommendation requests (histories, free-form instructions, or intention
queries — whichever the engine can encode) and read results from the
returned :class:`PendingRecommendation`.  Three flush disciplines drain
the queue through the micro-batcher into the engine's batched
trie-constrained decode:

* **Synchronous** — the caller invokes :meth:`RecommendationService.flush`
  (or lets ``result()`` trigger it).  Zero threads, deterministic batching;
  what tests and offline evaluation use.
* **Asynchronous, deadline-batched** (``mode="deadline"``, the default) —
  :meth:`RecommendationService.start` launches a background flush thread
  that decodes as soon as a full micro-batch is waiting *or* the oldest
  request exceeds the ``deadline_ms`` latency budget, whichever comes
  first.  Callers block in ``PendingRecommendation.result(timeout=...)``;
  :meth:`stop` drains in-flight work and joins the thread.
* **Asynchronous, continuous** (``mode="continuous"``, engines with
  ``supports_continuous`` only) — the background thread instead drives a
  :class:`ContinuousScheduler`: requests are admitted into the in-flight
  decode at trie-level boundaries (no closed batches, no deadline wait)
  and delivered the moment their own rows finish.  Under load this trades
  the deadline-flush queueing delay for at most one trie level of
  admission latency; ``benchmarks/bench_continuous_batching.py`` measures
  the p50/p95 gap under Poisson arrivals.

Results are identical to the engine's single-request oracle in every mode
— batching, deadlines, and continuous admission change the cost, never the
math.  Engines with ``supports_prefix_cache`` additionally skip re-running
prompt prefixes they have decoded before; see ``docs/serving.md`` for
tuning and invalidation.

Thread safety: ``submit*`` may be called from any number of threads in
any mode, and ``flush`` may race the background loop (decoding is
serialized on an internal lock; each request is delivered exactly once).
``start``/``stop`` are serialized on a lifecycle lock and may be called
from any thread (``stop`` is idempotent, including under concurrent
callers); handles are safe to share between threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..llm import PrefixKVCache
from .api import (
    DegradedRecommendation,
    FallbackRecommender,
    Overloaded,
    RecommendationClient,
)
from .batcher import MicroBatcher, MicroBatcherConfig, padding_fraction
from .continuous import ContinuousScheduler
from .engine import GenerativeEngine
from .queue import RecommendRequest, RequestQueue

__all__ = [
    "PendingRecommendation",
    "ServingStats",
    "RecommendationService",
    "refresh_retrieval_tier",
]

_UNSET = object()  # distinguishes "not passed" from an explicit prefix_cache


def refresh_retrieval_tier(client, version) -> bool:
    """Point a client's static retrieval lanes at a new catalog version.

    The ingestion-triggered retrieval-profile refresh: a service or
    cluster configured with a *static* :class:`repro.retrieval.RetrievalRecommender`
    as its ``fallback`` (or behind its ``hybrid``) would keep serving the
    pre-ingest tier forever — a session that already interacted with a
    newly ingested item could never see it among its retrieval candidates,
    because the frozen tier has neither the item's vector (profiles skip
    unknown ids) nor its index entry.  ``ingest_item`` calls this after
    the catalog publishes, swapping those static tiers for the published
    version's retrieval tier so retrieval profiles refresh in lockstep
    with the decode trie.

    Only plain ``RetrievalRecommender`` instances are touched: a
    :class:`repro.core.LiveCatalog` used as the fallback proxies the
    current version by itself, and custom fallback objects are the
    caller's to manage.  Swaps are single attribute assignments (atomic
    in CPython), so concurrent submits read either the old or the new
    tier, both internally consistent.  Returns whether anything changed.
    """
    tier = getattr(version, "retrieval", None)
    if tier is None:
        return False
    from ..retrieval import RetrievalRecommender

    refreshed = False
    fallback = getattr(client, "fallback", None)
    if isinstance(fallback, RetrievalRecommender) and fallback is not tier:
        client.fallback = tier
        refreshed = True
    hybrid = getattr(client, "hybrid", None)
    if hybrid is not None:
        retriever = getattr(hybrid, "retriever", None)
        if isinstance(retriever, RetrievalRecommender) and retriever is not tier:
            hybrid.retriever = tier
            refreshed = True
    return refreshed


class PendingRecommendation:
    """Future-style handle for one submitted request.

    Thread safety: the handle is written once by whichever thread decodes
    its batch (delivery is signalled through a :class:`threading.Event`)
    and may be read from any thread; ``result`` and ``done`` never race the
    writer.
    """

    def __init__(self, service: "RecommendationService", request_id: int):
        self._service = service
        self._request_id = request_id
        self._event = threading.Event()
        self._result: list[int] | None = None
        self._error: BaseException | None = None
        self._degraded_reason: str | None = None

    @property
    def request_id(self) -> int:
        return self._request_id

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def degraded(self) -> bool:
        """True when the retrieval fallback lane served this request.

        Meaningful once ``done``; a degraded handle also records why in
        ``degraded_reason`` (``"queue_full"`` or ``"deadline"``).
        """
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        return self._degraded_reason

    def result(self, timeout: float | None = None) -> list[int]:
        """The ranked item ids, blocking until the request is served.

        With the background flush loop running, blocks (up to ``timeout``
        seconds, raising ``TimeoutError`` on expiry) until the deadline or
        batch-size trigger decodes this request.  Without it, triggers a
        synchronous ``flush()`` — the pre-async behaviour.  Raises the
        decode's exception if this request's batch failed.
        """
        if not self._event.is_set() and not self._service.is_running:
            self._service.flush()
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self._request_id} not served within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    def _deliver(self, result: list[int]) -> None:
        self._result = result
        self._event.set()

    def _deliver_degraded(self, result: list[int], reason: str) -> None:
        self._degraded_reason = reason
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class ServingStats:
    """O(1)-memory counters the throughput benchmark and tests read.

    ``size_flushes``/``deadline_flushes`` count what triggered each
    background flush: a full batch waiting vs the oldest request aging past
    the latency budget.  Synchronous ``flush()`` calls count in neither.
    In continuous mode, ``batches`` counts admission prefills instead of
    closed batches, and ``admissions``/``joins`` record how many admission
    groups were prefilled / how many of those joined an already-live
    decode rather than starting a fresh one.

    ``padding_fraction_sum`` accumulates per-batch padding fractions over
    the engine's *effective* lengths (post-prefix-cache, for engines with
    a cache) — the columns the decode actually forwards — so the mean
    reflects real decode cost, not raw prompt shapes.

    ``shed_queue_full`` / ``shed_deadline`` count admission-control
    rejections (typed :class:`repro.serving.Overloaded` deliveries): a
    bounded queue refusing a submit, and a queued request dropped because
    its shed deadline passed before its decode started.  Shed requests
    count in neither ``requests`` nor ``batches``.

    ``degraded_queue_full`` / ``degraded_deadline`` count would-be-shed
    requests the retrieval fallback *served* instead (the service was
    constructed with a ``fallback``): those handles resolve with a
    ranking and ``degraded=True``, and they are deliberately **not**
    counted as shed — served and shed are disjoint outcomes.

    ``hybrid_narrowed`` / ``hybrid_retrieval`` count the hybrid lane
    (services constructed with ``hybrid=``): history submits decoded over
    a retrieval-narrowed candidate subtrie, and history submits the
    retrieval tier answered outright (cold start, or no decodable
    candidates) without costing a decode slot.

    ``prefill_seconds`` / ``step_seconds`` / ``finalize_seconds`` attribute
    decode-path wall time to its stages: the prompt phase (including
    prefix-cache matching and level-0 expansion), the per-level stepping
    loop (including retirements), and ranking post-processing (which may
    re-decode for widen-and-backfill engines).  The benchmark JSON reports
    read these through :meth:`stage_seconds`, so a perf regression can be
    attributed to a stage instead of showing up only in end-to-end
    latency.  Queue wait and thread handoff are deliberately excluded —
    these are engine-cost counters.
    """

    requests: int = 0
    batches: int = 0
    padding_fraction_sum: float = 0.0
    size_flushes: int = 0
    deadline_flushes: int = 0
    admissions: int = 0
    joins: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    degraded_queue_full: int = 0
    degraded_deadline: int = 0
    hybrid_narrowed: int = 0
    hybrid_retrieval: int = 0
    prefill_seconds: float = 0.0
    step_seconds: float = 0.0
    finalize_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_padding_fraction(self) -> float:
        return self.padding_fraction_sum / self.batches if self.batches else 0.0

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage decode time: ``{"prefill": .., "step": .., "finalize": ..}``."""
        return {
            "prefill": self.prefill_seconds,
            "step": self.step_seconds,
            "finalize": self.finalize_seconds,
        }


class RecommendationService(RecommendationClient):
    """Micro-batched recommendation serving over a :class:`GenerativeEngine`.

    Synchronous use (explicit flush)::

        service = RecommendationService(LCRecEngine(model))
        pending = [service.submit(h) for h in histories]
        service.flush()
        rankings = [p.result() for p in pending]

    Asynchronous use (deadline-batched background flushing)::

        with RecommendationService(LCRecEngine(model), deadline_ms=25.0) as service:
            pending = [service.submit(h) for h in histories]   # any thread
            rankings = [p.result(timeout=5.0) for p in pending]
        # __exit__ -> stop(): drains in-flight work, joins the thread

    The service holds no model-specific code: request encoding, beam
    policy, the decode itself, and ranking post-processing all live behind
    the engine protocol, so TIGER and P5-CID (and any future backend)
    serve through the exact same queue/batcher/scheduler machinery.

    Parameters
    ----------
    engine:
        A :class:`GenerativeEngine` adapter (``LCRecEngine(model)``,
        ``TIGEREngine(model)``, ``P5CIDEngine(model)``, ...).  Passing a
        bare model raises ``TypeError`` — wrap it first (the pre-PR-4
        ``RecommendationService(model)`` shim is gone).
    batcher:
        Micro-batching policy; see :class:`MicroBatcherConfig`.
    deadline_ms:
        Async latency budget: the background loop flushes once the oldest
        queued request has waited this long (a full batch flushes sooner).
        Ignored by the continuous loop, which admits immediately.
    queue_depth:
        Admission-control bound on how many requests may wait in the
        queue at once (``None`` = unbounded, the default).  A submit that
        finds the queue full is refused with a handle already failed with
        a typed :class:`repro.serving.Overloaded` (reason
        ``"queue_full"``) instead of queueing unboundedly — what keeps
        worst-case latency bounded under overload.
    hybrid:
        Optional :class:`repro.retrieval.HybridRecommender` — the
        retrieval-narrowed decode lane, now reachable through plain
        ``submit`` calls.  When set, each history submit first asks the
        hybrid's retrieval tier for candidates: cold-start histories (no
        profile) and histories with no decodable candidates are answered
        from retrieval immediately (a pre-served ``degraded`` handle,
        reason ``"cold_start"`` / ``"no_candidates"``); everything else
        is stamped with the candidate tuple (``narrow_items``) and
        decoded over the candidate subtrie, then backfilled exactly as
        :meth:`HybridRecommender.recommend` would — a submitted request
        and a library call return identical rankings.  Requires an
        engine with ``supports_narrowing``; the hybrid's own engine is
        not used for decoding (only its retriever and backfill rule), so
        one hybrid object can be shared across cluster workers.
        Intention/instruction submits bypass the lane (no history to
        retrieve for).
    mode:
        Background-loop discipline: ``"deadline"`` (default) decodes in
        closed deadline-batched flushes; ``"continuous"`` admits queued
        requests into the in-flight decode at trie-level boundaries and
        retires finished requests early, with ``max_batch_size`` acting as
        the cap on the joined batch width.  Continuous mode requires an
        engine with ``supports_continuous``.  Synchronous ``flush()`` and
        rankings are identical in both modes.
    prefix_cache:
        Optional override forwarded to ``engine.set_prefix_cache`` —
        ``True`` builds a fresh :class:`repro.llm.PrefixKVCache`, a cache
        instance shares/sizes one, ``False``/``None`` disables.  Left
        unset, the engine keeps whatever cache it was constructed with.
        Rankings are identical either way.
    fallback:
        Optional :class:`repro.serving.FallbackRecommender` — the
        retrieval fast lane.  When set, a ``submit`` (history) request
        that admission control would shed (full queue at submit, or shed
        deadline passed while queued) is *served* from the fallback
        instead of rejected: its handle resolves with the fallback
        ranking and ``degraded=True``.  Intention/instruction submits
        carry no item history the fallback could use and keep the plain
        ``Overloaded`` rejection.  ``None`` (default) keeps pre-fallback
        shedding exactly as it was.

    Thread safety: see the module docstring.  The decode path itself is
    serialized on one internal lock, so a concurrent ``flush()`` and
    background loop never interleave inside the engine.
    """

    def __init__(
        self,
        engine: GenerativeEngine,
        batcher: MicroBatcherConfig | None = None,
        deadline_ms: float = 25.0,
        mode: str = "deadline",
        prefix_cache: PrefixKVCache | bool | None = _UNSET,
        queue_depth: int | None = None,
        fallback: FallbackRecommender | None = None,
        hybrid=None,
    ):
        if not isinstance(engine, GenerativeEngine):
            # The pre-PR-4 constructor took a built LCRec model; the shim
            # that silently wrapped it was removed in PR 6.
            raise TypeError(
                "RecommendationService requires a GenerativeEngine adapter, got "
                f"{type(engine).__name__}; wrap the model first, e.g. "
                "RecommendationService(LCRecEngine(model)) or model.service(...)"
            )
        if prefix_cache is not _UNSET:
            engine.set_prefix_cache(prefix_cache)
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if mode not in ("deadline", "continuous"):
            raise ValueError(f"mode must be 'deadline' or 'continuous', got {mode!r}")
        if mode == "continuous" and not engine.supports_continuous:
            raise ValueError(
                f"engine {engine.name!r} does not support continuous batching; "
                "use mode='deadline'"
            )
        if hybrid is not None and not engine.supports_narrowing:
            raise ValueError(
                f"engine {engine.name!r} does not support candidate narrowing; "
                "the hybrid lane needs supports_narrowing"
            )
        self.engine = engine
        self.fallback = fallback
        self.hybrid = hybrid
        self.batcher = MicroBatcher(batcher)
        self.queue = RequestQueue(max_depth=queue_depth)
        self.stats = ServingStats()
        self.deadline_ms = float(deadline_ms)
        self.mode = mode
        self._pending: dict[int, PendingRecommendation] = {}
        self._pending_lock = threading.Lock()
        self._decode_lock = threading.Lock()
        self._lifecycle = threading.Lock()
        self._stop = threading.Event()
        self._drain_on_stop = True
        self._worker: threading.Thread | None = None

    @property
    def prefix_cache(self) -> PrefixKVCache | None:
        """The engine's cross-request prompt prefix cache, if any."""
        return self.engine.prefix_cache

    @property
    def backlog(self) -> int:
        """Undelivered requests: queued plus in-decode.

        What the cluster's least-loaded spillover and per-worker admission
        bound measure — a worker mid-decode with an empty queue is not
        idle, and its in-flight work must count against its load.
        """
        with self._pending_lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """Whether the background flush loop is active."""
        return self._worker is not None

    def start(self) -> "RecommendationService":
        """Launch the background loop thread; returns self for chaining.

        The thread runs the deadline-batched flush loop or the continuous
        scheduler, per the service's ``mode``.  Serialized with
        :meth:`stop` on the lifecycle lock.
        """
        with self._lifecycle:
            if self._worker is not None:
                raise RuntimeError("service is already running")
            self._stop.clear()
            target = self._continuous_loop if self.mode == "continuous" else self._flush_loop
            self._worker = threading.Thread(target=target, name="serving-flush", daemon=True)
            self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the background loop, by default draining in-flight work.

        With ``drain=True`` every request submitted before ``stop`` is
        decoded and delivered before the thread exits; with ``drain=False``
        queued requests stay queued (a later ``flush()`` or ``result()``
        still serves them synchronously).  Idempotent, including under
        concurrent callers: the lifecycle lock serializes ``start``/``stop``
        so one caller joins the worker and every other sees it already
        stopped.
        """
        with self._lifecycle:
            if self._worker is None:
                return
            self._drain_on_stop = drain
            self._stop.set()
            self.queue.kick()
            self._worker.join()
            self._worker = None

    # __enter__/__exit__ and recommend_many come from RecommendationClient:
    # the context manager starts/stops the background loop, and
    # recommend_many is submit-all + flush-or-await.

    def _flush_loop(self) -> None:
        """Deadline-batched flushing: the background thread's main loop."""
        deadline = self.deadline_ms / 1000.0
        max_size = self.batcher.config.max_batch_size
        while True:
            requests, reason = self.queue.await_batch(deadline, max_size, self._stop.is_set)
            if reason == "stop":
                break
            if reason == "size":
                self.stats.size_flushes += 1
            else:
                self.stats.deadline_flushes += 1
            self._decode_requests(requests, raise_errors=False)
        if self._drain_on_stop:
            self._decode_requests(self.queue.drain(), raise_errors=False)

    def _continuous_loop(self) -> None:
        """Continuous batching: the background thread's main loop.

        Each iteration is one trie-level boundary: admit whatever queued
        requests fit the in-flight decode (width cap, engine join
        constraints), advance every row one level, and deliver the rows
        that finished.  When idle it parks on the queue — no deadline
        wait: the first request is admitted immediately and later ones
        join it mid-decode.
        """
        scheduler = ContinuousScheduler(
            self.engine, max_width=self.batcher.config.max_batch_size
        )
        while not self._stop.is_set():
            if scheduler.idle and not self.queue.await_request(self._stop.is_set):
                break
            self._drive_scheduler(scheduler)
        # In-flight rows are no longer queued, so they must be finished and
        # delivered regardless of the drain flag; with drain, everything
        # still waiting in the queue is admitted and finished too.
        while not scheduler.idle or (self._drain_on_stop and self.queue):
            self._drive_scheduler(scheduler, admit=self._drain_on_stop)

    def _drive_scheduler(self, scheduler: ContinuousScheduler, admit: bool = True) -> None:
        """One level boundary: admit compatible queued work, step, deliver."""
        ready: list[tuple[PendingRecommendation, list[int]]] = []
        with self._decode_lock:
            if admit:
                requests = self.queue.pop_front(
                    scheduler.free_width, scheduler.admission_predicate()
                )
                # Shed-at-admission: a deadline that expired while queued
                # fails here, the last instant before decode cost is paid.
                requests = self._shed_expired(requests)
                if requests:
                    joining = not scheduler.idle
                    # Probe effective lengths before admit(): prefill files
                    # the prompts into the prefix cache, after which they
                    # would all probe as full hits.
                    padding = padding_fraction(requests, self._effective_len())
                    tick = time.perf_counter()
                    try:
                        scheduler.admit(requests)
                    except Exception as exc:
                        # Prefill and join validation run before the live
                        # decode's state is touched: fail only the incoming
                        # requests, keep serving the in-flight ones.
                        self._fail_requests(requests, exc)
                        requests = []
                    finally:
                        # Admission is an engine prefill (plus the join).
                        self.stats.prefill_seconds += time.perf_counter() - tick
                    if requests:
                        self.stats.admissions += 1
                        self.stats.joins += int(joining)
                        self.stats.batches += 1
                        self.stats.padding_fraction_sum += padding
            tick = time.perf_counter()
            try:
                delivered = scheduler.step()
            except Exception as exc:
                # A broken step takes down every in-flight row (their
                # decode state is unrecoverable); fail those handles and
                # keep the loop alive for the requests still queued.
                self.stats.step_seconds += time.perf_counter() - tick
                self._fail_requests(scheduler.abort(), exc)
                return
            self.stats.step_seconds += time.perf_counter() - tick
            self.stats.requests += len(delivered)
            for request, hypotheses in delivered:
                with self._pending_lock:
                    handle = self._pending.pop(request.request_id, None)
                if handle is not None:
                    # finalize may re-decode (widen-and-backfill engines),
                    # so it runs under the decode lock with delivery after.
                    # A failing finalize must fail only its own handle, not
                    # take down the loop (and with it every later request).
                    tick = time.perf_counter()
                    try:
                        ready.append((handle, self._finalize_rankings([request], [hypotheses])[0]))
                    except Exception as exc:
                        handle._fail(exc)
                    finally:
                        self.stats.finalize_seconds += time.perf_counter() - tick
        for handle, ranking in ready:
            handle._deliver(ranking)

    def _fail_requests(self, requests: list[RecommendRequest], error: Exception) -> None:
        for request in requests:
            with self._pending_lock:
                handle = self._pending.pop(request.request_id, None)
            if handle is not None:
                handle._fail(error)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        history: Sequence[int],
        top_k: int = 10,
        template_id: int = 0,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> PendingRecommendation:
        """Queue a next-item recommendation for an interaction history.

        ``session_key`` is accepted for client-API uniformity (the cluster
        routes on it; a single service has nowhere to route) and recorded
        on the request.  ``deadline_ms`` is the shed budget: if the
        request is still queued that many milliseconds from now, it is
        dropped with a typed :class:`repro.serving.Overloaded` instead of
        decoded late.

        With a ``hybrid`` configured, history submits go through the
        hybrid lane: retrieval candidates narrow the decode (or answer it
        outright on cold start), and the delivered ranking matches
        :meth:`HybridRecommender.recommend` exactly.
        """
        history = list(history)
        narrow_items: tuple[int, ...] | None = None
        if self.hybrid is not None:
            if self.hybrid.retriever.profile(history) is None:
                # Cold start: the constrained decoder has no history
                # signal either — answer from retrieval without costing
                # a decode slot (exactly hybrid.recommend's lane).
                return self._serve_retrieval(history, top_k, "cold_start")
            candidates = self.hybrid.candidates(history, top_k)
            if not candidates:
                return self._serve_retrieval(history, top_k, "no_candidates")
            narrow_items = tuple(int(item) for item in candidates)
            self.stats.hybrid_narrowed += 1
        return self._submit_prompt(
            self.engine.encode_history(history, template_id),
            top_k,
            session_key=session_key,
            deadline_ms=deadline_ms,
            history=history,
            narrow_items=narrow_items,
        )

    def _serve_retrieval(
        self, history: list[int], top_k: int, reason: str
    ) -> DegradedRecommendation:
        """A pre-served handle from the hybrid's retrieval tier."""
        self.stats.hybrid_retrieval += 1
        return DegradedRecommendation(
            self.hybrid.retriever.recommend(history, top_k), reason
        )

    def submit_intention(
        self,
        intention_text: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> PendingRecommendation:
        """Queue an intention-query retrieval (engines that encode intentions)."""
        return self._submit_prompt(
            self.engine.encode_intention(intention_text),
            top_k,
            session_key=session_key,
            deadline_ms=deadline_ms,
        )

    def submit_instruction(
        self,
        instruction: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> PendingRecommendation:
        """Queue an already-rendered instruction (engines that encode text)."""
        return self._submit_prompt(
            self.engine.encode_instruction(instruction),
            top_k,
            session_key=session_key,
            deadline_ms=deadline_ms,
        )

    def _submit_prompt(
        self,
        prompt_ids: list[int],
        top_k: int,
        session_key: str | None = None,
        deadline_ms: float | None = None,
        history: list[int] | None = None,
        narrow_items: tuple[int, ...] | None = None,
    ) -> PendingRecommendation:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None for no deadline)")
        request = RecommendRequest(
            prompt_ids=prompt_ids,
            top_k=top_k,
            # The effective beam width is fixed per request at submit time
            # (never widened by co-batched requests) so results match the
            # per-request path regardless of batch composition.
            beam_size=self.engine.request_beam_size(top_k),
            session_key=session_key,
            deadline=None if deadline_ms is None else time.monotonic() + deadline_ms / 1000.0,
            history=history,
            narrow_items=narrow_items,
        )
        handle = PendingRecommendation(self, request.request_id)
        # Register before push: with the background loop running, the
        # request may be decoded the instant it becomes visible.
        with self._pending_lock:
            self._pending[request.request_id] = handle
        if not self.queue.try_push(request):
            # Admission control: the bounded queue refused the request.
            # Nothing was enqueued either way; with a retrieval fallback
            # and a history to retrieve for, the request is served
            # degraded, otherwise the handle comes back already failed —
            # submit itself stays exception-free under overload.
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            if self.fallback is not None and history is not None:
                self.stats.degraded_queue_full += 1
                handle._deliver_degraded(
                    self.fallback.recommend(history, request.top_k), "queue_full"
                )
            else:
                self.stats.shed_queue_full += 1
                handle._fail(
                    Overloaded(
                        f"request queue full (depth bound {self.queue.max_depth})",
                        reason="queue_full",
                    )
                )
        return handle

    # ------------------------------------------------------------------
    # Catalog lifecycle
    # ------------------------------------------------------------------
    def ingest_item(
        self,
        *,
        text: str | None = None,
        embedding=None,
        popularity_count: int = 0,
    ):
        """Add one item to the live catalog the engine serves from.

        Requires an engine with a :class:`repro.core.LiveCatalog`
        attached (:meth:`TrieDecoderEngine.attach_catalog`).  Returns the
        catalog's :class:`repro.core.IngestedItem`; the very next prefill
        decodes over the new item while in-flight decodes finish against
        their pinned version.  A static ``fallback``/``hybrid`` retrieval
        tier is refreshed to the published version
        (:func:`refresh_retrieval_tier`), so sessions that already
        interacted with the new item see it in their retrieval
        candidates.  Thread-safe against concurrent submits and the
        background loop — ingestion never touches decode state.
        """
        catalog = getattr(self.engine, "catalog", None)
        if catalog is None:
            raise RuntimeError(
                "engine has no live catalog; build one with model.live_catalog() "
                "and engine.attach_catalog(catalog) before ingesting"
            )
        ingested = catalog.ingest(
            text=text, embedding=embedding, popularity_count=popularity_count
        )
        refresh_retrieval_tier(self, ingested.version)
        return ingested

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Decode everything queued; returns the number of requests served.

        Requests whose shed deadline has already passed are dropped (their
        handles fail with :class:`repro.serving.Overloaded`) and do not
        count as served.
        """
        return self._decode_requests(self.queue.drain())

    def _shed_expired(self, requests: list[RecommendRequest]) -> list[RecommendRequest]:
        """Drop deadline-expired requests, failing their handles; keep the rest.

        This is the shed side of the deadline-vs-completion race, and it
        runs exactly once per request, at the moment its decode would
        start: a request that made it into a decode batch completes
        normally even if its deadline passes mid-decode.
        """
        live: list[RecommendRequest] = []
        for request in requests:
            if not request.expired:
                live.append(request)
            elif self.fallback is not None and request.history is not None:
                # Degrade instead of shed: answer from the retrieval fast
                # lane, flagged, rather than failing the caller outright.
                with self._pending_lock:
                    handle = self._pending.pop(request.request_id, None)
                if handle is not None:
                    self.stats.degraded_deadline += 1
                    handle._deliver_degraded(
                        self.fallback.recommend(request.history, request.top_k),
                        "deadline",
                    )
            else:
                self.stats.shed_deadline += 1
                self._fail_requests(
                    [request],
                    Overloaded(
                        f"request {request.request_id} missed its deadline while queued",
                        reason="deadline",
                    ),
                )
        return live

    def _effective_len(self) -> "Callable[[RecommendRequest], int]":
        """The engine's decode-cost model, memoized per request.

        Memoization matters for prefix-cache engines: a request's real
        prompt-forward cost must be probed *before* the decode files its
        prompt into the cache (after which it would probe as a full hit),
        and the padding stats must see the same numbers the batcher
        bucketed on.
        """
        engine = self.engine
        memo: dict[int, int] = {}

        def effective(request: RecommendRequest) -> int:
            length = memo.get(request.request_id)
            if length is None:
                length = engine.effective_len(request)
                memo[request.request_id] = length
            return length

        return effective

    def _finalize_rankings(self, batch, all_hypotheses) -> list[list[int]]:
        """Engine finalize plus the hybrid lane's backfill rule.

        A narrowed decode surfaces at most its candidate set; backfilling
        from the candidate order and then the popularity order
        (:meth:`HybridRecommender.backfill`) is what makes a served
        narrowed request return the exact list ``hybrid.recommend``
        would.
        """
        rankings = self.engine.finalize(batch, all_hypotheses)
        if self.hybrid is None:
            return rankings
        return [
            self.hybrid.backfill(ranking, list(request.narrow_items), request.top_k)
            if request.narrow_items is not None
            else ranking
            for request, ranking in zip(batch, rankings)
        ]

    def _narrow_groups(
        self, requests: list[RecommendRequest]
    ) -> list[list[RecommendRequest]]:
        """Partition a drained queue by narrow candidate set, FIFO-stable.

        One engine prefill takes one narrow set (mixed sets fail
        prefill's validation), so the closed-batch path plans each group
        separately — the continuous path gets the same grouping from the
        admission predicate instead.
        """
        groups: dict[tuple[int, ...] | None, list[RecommendRequest]] = {}
        for request in requests:
            groups.setdefault(request.narrow_items, []).append(request)
        return list(groups.values())

    def _decode_requests(
        self,
        requests: list[RecommendRequest],
        raise_errors: bool = True,
        shed: bool = True,
    ) -> int:
        # A failing batch must neither hang its own waiters nor strand the
        # other planned batches (their requests are already drained from the
        # queue): fail the broken batch's handles, keep decoding the rest,
        # and re-raise the first error at the end.
        #
        # Deadline shedding runs per micro-batch, at the moment that
        # batch's decode would start — not once for the whole plan — so
        # ``deadline_ms`` caps queueing delay even when a deep backlog
        # drains across many sequential batches.
        #
        # Requests are partitioned by narrow candidate set before the
        # micro-batcher plans: one prefill takes one narrow set.
        first_error: Exception | None = None
        served = 0
        effective_len = self._effective_len()
        with self._decode_lock:
            for group in self._narrow_groups(requests):
                for batch in self.batcher.plan(group, effective_len):
                    if shed:
                        batch = self._shed_expired(batch)
                        if not batch:
                            continue
                    try:
                        self._decode_batch(batch, effective_len)
                        served += len(batch)
                    except Exception as exc:
                        for request in batch:
                            with self._pending_lock:
                                handle = self._pending.pop(request.request_id, None)
                            if handle is not None:
                                handle._fail(exc)
                        if first_error is None:
                            first_error = exc
        if first_error is not None and raise_errors:
            raise first_error
        return served

    def _decode_batch(
        self,
        batch: list[RecommendRequest],
        effective_len: "Callable[[RecommendRequest], int]",
    ) -> None:
        # Drive the engine contract directly (exactly what engine.decode
        # does) so wall time can be attributed per stage in the stats.
        tick = time.perf_counter()
        state = self.engine.prefill(batch)
        self.stats.prefill_seconds += time.perf_counter() - tick
        tick = time.perf_counter()
        while not state.done:
            self.engine.step(state)
        all_hypotheses = self.engine.finish(state)
        self.stats.step_seconds += time.perf_counter() - tick
        tick = time.perf_counter()
        rankings = self._finalize_rankings(batch, all_hypotheses)
        self.stats.finalize_seconds += time.perf_counter() - tick
        for request, ranking in zip(batch, rankings):
            with self._pending_lock:
                handle = self._pending.pop(request.request_id, None)
            if handle is not None:
                handle._deliver(ranking)
        self.stats.requests += len(batch)
        self.stats.batches += 1
        # Effective lengths (memoized at plan time, so this sees the same
        # probe the batcher bucketed on): rows served from a prefix cache
        # forward only their unseen suffix, and the padding stat must
        # reflect that real decode width, not raw prompt shapes.
        self.stats.padding_fraction_sum += padding_fraction(batch, effective_len)

