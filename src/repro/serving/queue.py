"""Request queue for the batched recommendation service.

Requests arrive one at a time (interactive traffic) but are decoded in
micro-batches; the queue is the buffer between the two.  It is a
thread-safe FIFO with a condition variable on top: producers ``push`` from
any thread, and the consumer either ``drain``\\ s explicitly (synchronous
serving) or blocks in :meth:`RequestQueue.await_batch` until a flush is
due (the async serving loop) — due meaning a full batch is waiting or the
oldest request has exceeded its latency budget.

Thread safety: every method takes the internal condition's lock;
``push``/``drain``/``await_batch``/``kick`` may be called concurrently
from any mix of threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["RecommendRequest", "RequestQueue"]

_request_counter = itertools.count()


@dataclass
class RecommendRequest:
    """One queued recommendation call, already encoded to prompt ids.

    ``beam_size`` is the *effective* beam width this request must be decoded
    with (already folding in ``top_k``); the batcher never mixes beam widths
    in one micro-batch, because beam width changes rankings and co-batched
    requests must get exactly the results they would get decoded alone.
    ``enqueued_at`` (monotonic seconds) is what deadline-based flushing
    measures request age against.

    ``session_key`` is an opaque caller-supplied affinity key (user or
    session id); the cluster router hashes it so a session's refresh
    traffic lands on the worker already holding its prompt K/V.  It never
    affects rankings.  ``deadline`` is an absolute ``time.monotonic()``
    instant after which the request would rather be shed (failed with a
    typed :class:`repro.serving.Overloaded`) than decoded late; ``None``
    means wait forever.  The shed check runs when a decode *starts* — a
    request already being decoded when its deadline passes completes
    normally (completion wins the race).

    ``history`` is the raw interaction history behind a ``submit`` call
    (``None`` for instruction/intention submits, which have no item
    history).  The decode never reads it; it exists so a configured
    retrieval fallback can serve the request at shed time — after
    encoding, the prompt ids alone cannot be mapped back to items.

    ``narrow_items`` is the hybrid lane's retrieval candidate set (a
    tuple, hashable so the service can group co-decodable requests;
    ``None`` = full-trie decode).  The engine decodes such a request over
    a candidate subtrie — same rankings over the candidates as a full
    decode, less work — and only co-batches/joins requests sharing the
    exact candidate tuple.
    """

    prompt_ids: list[int]
    top_k: int = 10
    beam_size: int = 0
    session_key: str | None = None
    deadline: float | None = None
    request_id: int = field(default_factory=lambda: next(_request_counter))
    enqueued_at: float = field(default_factory=time.monotonic)
    history: list[int] | None = None
    narrow_items: tuple[int, ...] | None = None

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    @property
    def expired(self) -> bool:
        """Whether the request's shed deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline


class RequestQueue:
    """Thread-safe FIFO of :class:`RecommendRequest` with deadline waits.

    ``max_depth`` bounds how many requests may wait at once (admission
    control): :meth:`try_push` refuses the overflow instead of queueing
    unboundedly, which is what keeps latency bounded under overload —
    callers turn a refusal into a typed :class:`repro.serving.Overloaded`
    rejection.  ``None`` (the default) keeps the queue unbounded, the
    pre-cluster behaviour.
    """

    def __init__(self, max_depth: int | None = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be positive (or None for unbounded)")
        self._items: deque[RecommendRequest] = deque()
        self._cond = threading.Condition()
        self.max_depth = max_depth

    def push(self, request: RecommendRequest) -> None:
        """Enqueue unconditionally (even past ``max_depth``); see try_push."""
        with self._cond:
            self._items.append(request)
            self._cond.notify_all()

    def try_push(self, request: RecommendRequest) -> bool:
        """Enqueue unless the depth bound is reached; False means refused."""
        with self._cond:
            if self.max_depth is not None and len(self._items) >= self.max_depth:
                return False
            self._items.append(request)
            self._cond.notify_all()
            return True

    def drain(self, limit: int | None = None) -> list[RecommendRequest]:
        """Pop up to ``limit`` requests (all, if ``limit`` is None), FIFO."""
        with self._cond:
            return self._drain_locked(limit)

    def _drain_locked(self, limit: int | None) -> list[RecommendRequest]:
        if limit is None or limit >= len(self._items):
            drained = list(self._items)
            self._items.clear()
        else:
            drained = [self._items.popleft() for _ in range(limit)]
        return drained

    def await_batch(
        self,
        deadline: float,
        max_size: int,
        should_stop: Callable[[], bool],
    ) -> tuple[list[RecommendRequest], str]:
        """Block until a flush is due, then drain the whole queue.

        A flush is due when ``max_size`` requests are waiting (returns
        reason ``"size"``) or when the oldest waiting request is older than
        ``deadline`` seconds (reason ``"deadline"``).  Returns
        ``([], "stop")`` as soon as ``should_stop()`` turns true; callers
        flip their stop flag and :meth:`kick` the queue to wake this wait.
        """
        with self._cond:
            while not should_stop():
                if not self._items:
                    self._cond.wait()
                    continue
                if len(self._items) >= max_size:
                    return self._drain_locked(None), "size"
                age = time.monotonic() - self._items[0].enqueued_at
                if age >= deadline:
                    return self._drain_locked(None), "deadline"
                self._cond.wait(timeout=deadline - age)
            return [], "stop"

    def await_request(self, should_stop: Callable[[], bool]) -> bool:
        """Block until at least one request is queued (True) or stop (False).

        The continuous-batching loop parks here while its decode is idle:
        unlike :meth:`await_batch` there is no deadline to wait out —
        admission happens immediately, and batching emerges from later
        requests joining the decode in flight.
        """
        with self._cond:
            while not should_stop():
                if self._items:
                    return True
                self._cond.wait()
            return False

    def pop_front(
        self,
        limit: int,
        admit: Callable[[RecommendRequest], bool] | None = None,
    ) -> list[RecommendRequest]:
        """Pop up to ``limit`` requests from the head, stopping at the first
        one ``admit`` rejects.

        FIFO order is never bypassed: an inadmissible request at the head
        (wrong beam width for the in-flight batch) blocks the ones behind
        it until the decode drains, rather than being overtaken.  The
        continuous scheduler uses this to take exactly what fits its width
        cap and beam-compatibility constraint.
        """
        with self._cond:
            popped: list[RecommendRequest] = []
            while self._items and len(popped) < limit:
                if admit is not None and not admit(self._items[0]):
                    break
                popped.append(self._items.popleft())
            return popped

    def kick(self) -> None:
        """Wake every queue waiter to re-check its stop flag."""
        with self._cond:
            self._cond.notify_all()

    def oldest_age(self) -> float | None:
        """Seconds the oldest queued request has been waiting, if any."""
        with self._cond:
            if not self._items:
                return None
            return time.monotonic() - self._items[0].enqueued_at

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0
