"""Request queue for the batched recommendation service.

Requests arrive one at a time (interactive traffic) but are decoded in
micro-batches; the queue is the buffer between the two.  It is a plain
thread-safe FIFO: ``push`` from any producer thread, ``drain`` from the
serving loop.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = ["RecommendRequest", "RequestQueue"]

_request_counter = itertools.count()


@dataclass
class RecommendRequest:
    """One queued recommendation call, already encoded to prompt ids.

    ``beam_size`` is the *effective* beam width this request must be decoded
    with (already folding in ``top_k``); the batcher never mixes beam widths
    in one micro-batch, because beam width changes rankings and co-batched
    requests must get exactly the results they would get decoded alone.
    """

    prompt_ids: list[int]
    top_k: int = 10
    beam_size: int = 0
    request_id: int = field(default_factory=lambda: next(_request_counter))

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)


class RequestQueue:
    """Thread-safe FIFO of :class:`RecommendRequest`."""

    def __init__(self) -> None:
        self._items: deque[RecommendRequest] = deque()
        self._lock = threading.Lock()

    def push(self, request: RecommendRequest) -> None:
        with self._lock:
            self._items.append(request)

    def drain(self, limit: int | None = None) -> list[RecommendRequest]:
        """Pop up to ``limit`` requests (all, if ``limit`` is None), FIFO."""
        with self._lock:
            if limit is None or limit >= len(self._items):
                drained = list(self._items)
                self._items.clear()
            else:
                drained = [self._items.popleft() for _ in range(limit)]
        return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0
