"""The engine boundary: one serving stack for every generative recommender.

:class:`GenerativeEngine` is the protocol between the serving layer (queue,
micro-batcher, deadline loop, continuous scheduler) and a concrete
generative recommendation model.  It captures the *resumable decode*
contract the batched trie-constrained beam search exposes —

* :meth:`GenerativeEngine.prefill` runs the prompt phase plus the level-0
  beam expansion for a micro-batch and returns an opaque
  :class:`EngineState`,
* :meth:`GenerativeEngine.step` advances every in-flight row one trie
  level,
* :meth:`GenerativeEngine.join` merges freshly prefilled rows into a live
  state (continuous batching's admission primitive),
* :meth:`GenerativeEngine.retire` pops finished rows the moment they reach
  the final level, and :meth:`GenerativeEngine.finish` harvests everything

— plus capability flags (``supports_continuous``, ``supports_prefix_cache``,
``supports_sparse_head``, ``num_levels``) the service uses to pick a
scheduling discipline, and the request-shaping hooks (``encode_history``,
``request_beam_size``, ``effective_len``, ``finalize``) that keep
model-specific text rendering, beam policy and ranking post-processing out
of the service.

Three adapters ship with the repo:

=================  ==========================================  ==========  ===========
adapter            decode path                                 continuous  sparse head
=================  ==========================================  ==========  ===========
:class:`LCRecEngine`   shared :class:`repro.llm.DecodeState` stepper   yes         yes
:class:`P5CIDEngine`   same stepper (decoder-only TinyLlama)           yes         yes
:class:`TIGEREngine`   batched encoder-decoder beam expansion          no          yes
=================  ==========================================  ==========  ===========

Every adapter is ranking-preserving: batching is a cost optimisation, never
an approximation, and the parity suites pin each adapter to its
single-request oracle (``LCRec.recommend`` / ``beam_search_items_single``,
``TIGER.recommend``, ``P5CID.recommend``).

Writing a new adapter means implementing ``encode_history`` plus the five
decode-contract methods over your own state object (any object with
``num_rows``, ``num_beams``, ``done``, ``tags`` and ``finished_rows()``
works — see :class:`EngineState`); the service, micro-batcher and bench
runners then work unchanged.  ``docs/serving.md`` has a walkthrough.

Thread safety: engines are driven under the service's decode lock; they
are not required to be thread-safe beyond what their prefix cache already
guarantees.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from ..llm import (
    BeamHypothesis,
    PrefixKVCache,
    backfill_items,
    decode_finish,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
    ranked_item_ids,
)
from ..data.batching import pad_sequences
from ..llm.generation import (
    DEFAULT_SPEC_BUDGET,
    _narrow_positions,
    _narrowed_step_candidates,
    _speculative_window_open,
    masked_log_softmax,
    select_beams,
    topk_desc,
)
from ..quantization.trie import IndexTrie
from ..tensor import Tensor, no_grad, validate_precision
from .queue import RecommendRequest

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles at runtime
    from ..baselines.p5cid import P5CID
    from ..baselines.tiger import TIGER
    from ..core.lcrec import LCRec
    from ..llm.model import TinyLlama

__all__ = [
    "EngineState",
    "GenerativeEngine",
    "TrieDecoderEngine",
    "LCRecEngine",
    "P5CIDEngine",
    "TIGEREngine",
    "TIGERDecodeState",
]


@runtime_checkable
class EngineState(Protocol):
    """What the serving layer needs from an engine's opaque decode state.

    Engines may return any object from :meth:`GenerativeEngine.prefill` as
    long as it exposes this introspection surface; everything else about
    the state (caches, beams, memory) is the engine's private business.
    ``tags`` carries the :class:`RecommendRequest` of every in-flight row,
    in row order, through joins and retirements.
    """

    num_beams: int

    @property
    def num_rows(self) -> int: ...

    @property
    def done(self) -> bool: ...

    @property
    def tags(self) -> list: ...

    def finished_rows(self) -> list[int]: ...


class GenerativeEngine(abc.ABC):
    """Backend adapter driven by :class:`repro.serving.RecommendationService`.

    Subclasses wrap one built generative recommender and translate the
    serving layer's request/decode vocabulary into the model's own.  The
    base class supplies the one-shot :meth:`decode` loop, the default
    ranking :meth:`finalize`, and batch-free conveniences
    (:meth:`recommend_many`, :meth:`rank_prompts`) on top of the abstract
    decode contract.

    Capability flags
    ----------------
    ``supports_continuous``
        Whether :meth:`join`/:meth:`retire` implement level-boundary
        admission and early delivery, so the service may run its
        continuous-batching loop against this engine.
    ``supports_prefix_cache``
        Whether the engine can seed prompt K/V from a shared
        :class:`repro.llm.PrefixKVCache` (``prefix_cache`` is then not
        ``None`` when enabled).
    ``supports_sparse_head``
        Whether the engine can decode with a trie-aware *sparse* output
        head: logits computed for the current trie level's candidate
        union only, log-softmax renormalised over candidates, and forced
        (singleton-continuation) levels appended without a model forward.
        Rankings are identical to the dense head; only the cost changes.
        Engines that support it take a ``sparse_head`` constructor flag
        (default on) so benchmarks can measure the dense baseline.
    ``supports_replication``
        Whether :meth:`replicate` can stamp out worker-private copies of
        this engine — shared (read-only at serving time) model weights,
        but private mutable serving state: prefix K/V cache, gathered
        output-head :class:`repro.tensor.WeightMemo`, step workspaces.
        What :class:`repro.serving.ServingCluster` calls to provision one
        engine per worker thread without cloning the weights.
    ``supports_narrowing``
        Whether :meth:`narrowed` can restrict decoding to a candidate
        item set (retrieval-narrowed decode): beam *selection* is limited
        to the candidates' index sequences while scores keep renormalising
        over the full trie, so the ranking over the candidate set is
        identical to a full decode filtered post hoc.
    ``num_levels``
        Trie depth — :meth:`prefill` performs the level-0 expansion, so a
        freshly prefilled request needs ``num_levels - 1`` further
        :meth:`step` calls; levels are the granularity of continuous
        admission.
    """

    name: str = "engine"
    supports_continuous: bool = False
    supports_prefix_cache: bool = False
    supports_sparse_head: bool = False
    supports_replication: bool = False
    supports_narrowing: bool = False
    narrow: IndexTrie | None = None
    prefix_cache: PrefixKVCache | None = None
    default_beam_size: int = 20

    # ------------------------------------------------------------------
    # Capabilities and request shaping
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_levels(self) -> int:
        """Trie depth (prefill covers level 0; steps needed = depth - 1)."""

    @property
    @abc.abstractmethod
    def num_items(self) -> int:
        """Catalog size (for beam clamping and ranking backfill)."""

    def request_beam_size(self, top_k: int) -> int:
        """The beam width a request submitted with ``top_k`` decodes with.

        Fixed per request at submit time (never widened by co-batched
        requests) so results match the per-request path regardless of
        batch composition.
        """
        return max(self.default_beam_size, top_k)

    def effective_beams(self, beam_size: int) -> int:
        """The beam width a request actually decodes with (engine clamp)."""
        return min(beam_size, self.num_items)

    def effective_len(self, request: RecommendRequest) -> int:
        """Per-request decode-cost model for micro-batch length bucketing.

        Engines with a prefix cache override this with the *post-cache*
        length (prompt length minus the cached prefix the decode will
        skip), so near-full cache hits are not co-batched with misses that
        would dictate the padded width anyway.
        """
        return request.prompt_len

    def set_prefix_cache(self, prefix_cache: PrefixKVCache | bool | None) -> None:
        """Install (or disable) a cross-request prompt prefix cache."""
        # Identity checks, not truthiness: an *empty* PrefixKVCache is
        # falsy (it defines __len__), yet passing one still asks for
        # caching and must be rejected just like prefix_cache=True.
        if prefix_cache is not None and prefix_cache is not False:
            raise NotImplementedError(f"{type(self).__name__} does not support a prefix cache")
        self.prefix_cache = None

    def replicate(self) -> "GenerativeEngine":
        """A worker-private copy of this engine (cluster provisioning).

        The copy must share the model *weights* (no memory blow-up per
        worker) but own every piece of mutable serving state the decode
        path touches — prefix K/V cache, gathered-weight memos, scratch
        workspaces — so N workers can decode concurrently without their
        caches racing.  Rankings from a replica are identical to the
        original's.  Only engines with ``supports_replication`` implement
        this.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support replication")

    def narrowed(self, item_ids: Sequence[int]) -> "GenerativeEngine":
        """An engine copy whose decode is restricted to ``item_ids``.

        The hybrid retrieval tier calls this with the retrieved candidate
        set before constrained decode: the copy shares weights, trie and
        prefix cache with the original but carries a candidate subtrie
        (:meth:`repro.quantization.IndexTrie.subtrie`) as its beam
        *selection* constraint.  Scoring still renormalises over the full
        trie, so the candidates rank exactly as they would in a full
        decode — narrowing only skips the work (and the beam slots) of
        non-candidate paths.  Only engines with ``supports_narrowing``
        implement this.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support candidate narrowing")

    # ------------------------------------------------------------------
    # Request encoding
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode_history(self, history: Sequence[int], template_id: int = 0) -> list[int]:
        """Encode an interaction history into this engine's prompt ids."""

    def encode_instruction(self, instruction: str) -> list[int]:
        """Encode an already-rendered instruction (language engines only)."""
        raise NotImplementedError(f"{type(self).__name__} does not take free-form instructions")

    def encode_intention(self, intention_text: str) -> list[int]:
        """Encode an intention query (language engines only)."""
        raise NotImplementedError(f"{type(self).__name__} does not take intention queries")

    # ------------------------------------------------------------------
    # The resumable decode contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prefill(self, requests: Sequence[RecommendRequest]) -> EngineState:
        """Run the prompt phase and level-0 expansion for one micro-batch.

        All requests of one prefill must agree on effective beam width (a
        request's rankings must never depend on who it is co-batched
        with, and beam width changes rankings).
        """

    @abc.abstractmethod
    def step(self, state: EngineState) -> None:
        """Advance every in-flight row one trie level (one model forward)."""

    def join(self, state: EngineState, incoming: EngineState) -> None:
        """Merge freshly prefilled rows into a live state (admission)."""
        raise NotImplementedError(f"{type(self).__name__} does not support continuous batching")

    @abc.abstractmethod
    def retire(self, state: EngineState, rows: Sequence[int]) -> list[list[BeamHypothesis]]:
        """Pop the given finished rows, one hypothesis list per row."""

    def finish(self, state: EngineState) -> list[list[BeamHypothesis]]:
        """Retire every row (all must be at the final level), in row order."""
        return self.retire(state, range(state.num_rows))

    def can_join(self, state: EngineState, request: RecommendRequest) -> bool:
        """Whether ``request`` may be admitted into the live ``state``."""
        return False

    # ------------------------------------------------------------------
    # One-shot conveniences built on the contract
    # ------------------------------------------------------------------
    def decode(self, requests: Sequence[RecommendRequest]) -> list[list[BeamHypothesis]]:
        """One closed-batch decode: prefill, step to depth, finish."""
        requests = list(requests)
        if not requests:
            return []
        state = self.prefill(requests)
        while not state.done:
            self.step(state)
        return self.finish(state)

    def finalize(
        self,
        requests: Sequence[RecommendRequest],
        all_hypotheses: Sequence[list[BeamHypothesis]],
    ) -> list[list[int]]:
        """Turn decoded hypotheses into each request's ranked item ids.

        The default is plain score-ordered dedup (what ``LCRec.recommend``
        returns).  Engines that guarantee full ``top_k`` lists override
        this with widen-and-backfill (see :func:`widen_and_backfill`);
        overrides may re-decode, so callers must not hold model state
        across the call.
        """
        return [
            ranked_item_ids(hypotheses, request.top_k)
            for request, hypotheses in zip(requests, all_hypotheses)
        ]

    def rank_prompts(self, prompts: Sequence[Sequence[int]], top_k: int = 10) -> list[list[int]]:
        """Decode already-encoded prompts into ranked item-id lists."""
        requests = [
            RecommendRequest(
                prompt_ids=list(prompt), top_k=top_k, beam_size=self.request_beam_size(top_k)
            )
            for prompt in prompts
        ]
        return self.finalize(requests, self.decode(requests))

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10, template_id: int = 0
    ) -> list[list[int]]:
        """Batched next-item recommendation: one decode for all histories."""
        prompts = [self.encode_history(list(history), template_id) for history in histories]
        return self.rank_prompts(prompts, top_k=top_k)


def widen_and_backfill(
    engine: GenerativeEngine,
    requests: Sequence[RecommendRequest],
    all_hypotheses: Sequence[list[BeamHypothesis]],
) -> list[list[int]]:
    """Rankings padded to ``top_k`` ids: widen short beams, then backfill.

    Constrained decoding can surface fewer than ``top_k`` unique items — a
    narrow trie level starves the beam mid-search — and ranking metrics
    treat a short list as misses at the missing ranks.  Rows that come up
    short are re-decoded once with the beam widened to the full catalog
    (all short rows of the batch in one decode), and any residual
    shortfall is backfilled deterministically with the smallest unused
    item ids.  This is the batched equivalent of ``TIGER.recommend`` /
    ``P5CID.recommend``'s retry, and matches them ranking-for-ranking.
    """
    num_items = engine.num_items
    rankings = [
        ranked_item_ids(hypotheses, request.top_k)
        for request, hypotheses in zip(requests, all_hypotheses)
    ]
    short = [
        row
        for row, (request, ranked) in enumerate(zip(requests, rankings))
        if len(ranked) < min(request.top_k, num_items) and request.beam_size < num_items
    ]
    if short:
        widened = engine.decode([replace(requests[row], beam_size=num_items) for row in short])
        for row, hypotheses in zip(short, widened):
            rankings[row] = ranked_item_ids(hypotheses, requests[row].top_k)
    return [
        backfill_items(ranked, request.top_k, num_items)
        for request, ranked in zip(requests, rankings)
    ]


def _require_uniform_beams(engine: GenerativeEngine, requests: Sequence[RecommendRequest]) -> int:
    if not requests:
        raise ValueError("need at least one request")
    widths = {engine.effective_beams(request.beam_size) for request in requests}
    if len(widths) != 1:
        raise ValueError("co-batched requests must share an effective beam width")
    return widths.pop()


# ----------------------------------------------------------------------
# Decoder-only adapters: the shared DecodeState stepper
# ----------------------------------------------------------------------
class TrieDecoderEngine(GenerativeEngine):
    """Engine over a decoder-only :class:`TinyLlama` plus an index trie.

    Wraps the resumable :class:`repro.llm.DecodeState` stepper
    (:func:`decode_prefill` / :func:`decode_step` / :func:`decode_join` /
    :func:`decode_retire`), which is why every decoder-only backend gets
    continuous batching and the prefix KV cache for free — LC-Rec and
    P5-CID differ only in how they render a history into prompt ids and
    how rankings are post-processed.
    """

    supports_continuous = True
    supports_prefix_cache = True
    supports_sparse_head = True
    supports_replication = True
    supports_narrowing = True

    def __init__(
        self,
        lm: "TinyLlama",
        trie: IndexTrie,
        pad_id: int = 0,
        prefix_cache: PrefixKVCache | bool | None = None,
        default_beam_size: int = 20,
        sparse_head: bool = True,
        spec_budget: int = DEFAULT_SPEC_BUDGET,
        precision: str = "fp32",
    ):
        self.lm = lm
        self.catalog = None
        self._narrow_memo: dict[tuple, IndexTrie] = {}
        self.trie = trie
        self.pad_id = pad_id
        self.default_beam_size = default_beam_size
        self.sparse_head = sparse_head
        # Two-level speculative decode fan-out budget (0 disables) and
        # decode GEMM precision; see repro.llm.DecodeState.  Speculation
        # needs the sparse head's gathered logits, so the dense baseline
        # steps sequentially regardless of the budget.
        self.spec_budget = int(spec_budget) if sparse_head else 0
        self.precision = validate_precision(precision)
        self.narrow = None
        self.set_prefix_cache(prefix_cache)

    @property
    def trie(self) -> IndexTrie:
        """The active decoding trie.

        With a live catalog attached (:meth:`attach_catalog`) this reads
        the *current catalog version's* trie — one read is the version
        pin: a decode state built from it keeps that trie object for its
        whole life (``DecodeState.trie``), while later reads observe
        swaps.  Without a catalog it is the static trie the engine was
        constructed with.
        """
        if self.catalog is not None:
            return self.catalog.version.trie
        return self._trie

    @trie.setter
    def trie(self, value: IndexTrie) -> None:
        self._trie = value

    def attach_catalog(self, catalog) -> None:
        """Serve from a :class:`repro.core.LiveCatalog` (or detach with None).

        Every read of :attr:`trie` then follows the catalog's atomic
        version swaps: the first prefill after an ingestion decodes over
        the new item's trie, while decodes already in flight finish
        against the trie object they prefilled with.  ``replicate()``
        copies share the catalog reference, so one cluster-wide ingestion
        propagates to every worker for free.
        """
        self.catalog = catalog

    @property
    def num_levels(self) -> int:
        return self.trie.num_levels

    @property
    def num_items(self) -> int:
        return self.trie.num_items

    def effective_beams(self, beam_size: int) -> int:
        return min(beam_size, self.trie.num_items, self.lm.vocab_size)

    def set_prefix_cache(self, prefix_cache: PrefixKVCache | bool | None) -> None:
        if prefix_cache is True:
            prefix_cache = PrefixKVCache()
        elif prefix_cache is False:
            prefix_cache = None
        self.prefix_cache = prefix_cache

    def effective_len(self, request: RecommendRequest) -> int:
        if self.prefix_cache is None:
            return request.prompt_len
        cached = self.prefix_cache.probe(request.prompt_ids, max_len=request.prompt_len - 1)
        return request.prompt_len - cached

    def replicate(self) -> "TrieDecoderEngine":
        """A worker-private engine: shared weights, private caches.

        The language model is replaced by a serving replica (same
        parameter arrays, fresh gathered-head :class:`WeightMemo`), and
        the prefix K/V cache — if the original has one — by a fresh,
        equally-sized private instance: cross-worker K/V sharing would
        need locking on the decode hot path, and the cluster's affinity
        router exists precisely so one session's refreshes keep hitting
        the same worker's cache.  The trie is shared: its derived-array
        memos are get-or-build dict fills of identical values, safe for
        concurrent readers.  Works for subclasses too (``copy.copy``
        keeps their extra attributes, e.g. the model reference the
        encoders use).
        """
        clone = copy.copy(self)
        clone.lm = self.lm.serving_replica()
        clone._narrow_memo = {}
        if self.prefix_cache is not None:
            clone.prefix_cache = PrefixKVCache(
                max_entries=self.prefix_cache.max_entries,
                min_prefix_len=self.prefix_cache.min_prefix_len,
            )
        return clone

    def narrowed(self, item_ids: Sequence[int]) -> "TrieDecoderEngine":
        """See :meth:`GenerativeEngine.narrowed`.

        The copy shares the prefix cache on purpose: prompt K/V does not
        depend on the trie, so a narrowed decode both hits and warms the
        same cache as full decodes of the same session.
        """
        clone = copy.copy(self)
        clone.narrow = self.trie.subtrie(item_ids)
        return clone

    def encode_history(self, history: Sequence[int], template_id: int = 0) -> list[int]:
        """A bare trie-decoder engine serves pre-encoded prompts only.

        Model adapters (:class:`LCRecEngine`, :class:`P5CIDEngine`)
        override this with their own history-to-prompt rendering; the bare
        engine is for raw-prompt workloads (``rank_prompts`` or
        hand-built :class:`RecommendRequest`\\ s).
        """
        raise NotImplementedError(
            "TrieDecoderEngine has no history rendering; use rank_prompts or a model adapter"
        )

    # -- narrowing per request (the serving hybrid lane) ----------------
    def _request_narrow(
        self, narrow_items: tuple[int, ...] | None, trie: IndexTrie
    ) -> IndexTrie | None:
        """The narrow subtrie a request's ``narrow_items`` asks for.

        Candidate subtries are memoized per ``(trie, candidate tuple)``
        so repeated submissions with one retrieval candidate set share a
        subtrie *object* — the identity :meth:`can_join` (and the decode
        stepper's join check) compares, which is what lets narrowed
        requests join an in-flight narrowed decode.
        """
        if narrow_items is None:
            return self.narrow
        if self.narrow is not None:
            raise ValueError(
                "cannot apply per-request narrow_items to an already-narrowed engine"
            )
        key = (trie, tuple(int(item) for item in narrow_items))
        narrow = self._narrow_memo.get(key)
        if narrow is None:
            if len(self._narrow_memo) >= 256:
                # Bounded: stale (old-trie or cold-candidate) entries die
                # here; rebuilding a hot subtrie is cheap.
                self._narrow_memo.clear()
            narrow = trie.subtrie(key[1])
            self._narrow_memo[key] = narrow
        return narrow

    def _uniform_request_narrow(
        self, requests: Sequence[RecommendRequest], trie: IndexTrie
    ) -> IndexTrie | None:
        keys = {request.narrow_items for request in requests}
        if len(keys) != 1:
            raise ValueError("co-batched requests must share one narrow candidate set")
        return self._request_narrow(keys.pop(), trie)

    # -- decode contract -----------------------------------------------
    def prefill(self, requests: Sequence[RecommendRequest]) -> EngineState:
        requests = list(requests)
        _require_uniform_beams(self, requests)
        # One trie read pins this decode's catalog version: the state
        # carries the object through every step, join and retirement.
        trie = self.trie
        narrow = self._uniform_request_narrow(requests, trie)
        if self.prefix_cache is not None and self.catalog is not None:
            version = self.catalog.version
            self.prefix_cache.sync_catalog(version.version, version.stale_tokens)
        return decode_prefill(
            self.lm,
            [request.prompt_ids for request in requests],
            trie,
            beam_size=requests[0].beam_size,
            pad_id=self.pad_id,
            prefix_cache=self.prefix_cache,
            tags=requests,
            sparse=self.sparse_head,
            narrow=narrow,
            spec_budget=self.spec_budget,
            precision=self.precision,
        )

    def step(self, state: EngineState) -> None:
        decode_step(state)

    def join(self, state: EngineState, incoming: EngineState) -> None:
        decode_join(state, incoming)

    def retire(self, state: EngineState, rows: Sequence[int]) -> list[list[BeamHypothesis]]:
        return decode_retire(state, rows)

    def finish(self, state: EngineState) -> list[list[BeamHypothesis]]:
        return decode_finish(state)

    def can_join(self, state: EngineState, request: RecommendRequest) -> bool:
        """Joined rows must share beam width, catalog version and narrow.

        Width-1 decodes never fan out (suffix tokens share the prompt
        cache region), so they cannot be joined mid-flight: such a request
        waits for the decode to drain instead.  A live state is pinned to
        the trie it prefilled with, so after a catalog version swap new
        requests are not admitted into it — they wait for the drain and
        then prefill against the new catalog.  Narrowed (hybrid-lane)
        requests join only decodes narrowed to the *same* candidate
        subtrie.
        """
        width = self.effective_beams(request.beam_size)
        if width != state.num_beams or width <= 1:
            return False
        trie = self.trie
        if state.trie is not trie:
            return False  # pinned to a previous catalog version: drain first
        try:
            narrow = self._request_narrow(request.narrow_items, trie)
        except (KeyError, ValueError):
            return False
        return state.narrow is narrow


class LCRecEngine(TrieDecoderEngine):
    """The LC-Rec adapter: instruction rendering plus the shared stepper.

    ``LCRecEngine(model)`` (prefix cache on by default) is the primary way
    to stand a :class:`repro.serving.RecommendationService` over a built
    :class:`repro.core.LCRec`; ``model.service(...)`` builds exactly this.
    """

    name = "lcrec"

    def __init__(
        self,
        model: "LCRec",
        prefix_cache: PrefixKVCache | bool | None = True,
        sparse_head: bool = True,
        spec_budget: int = DEFAULT_SPEC_BUDGET,
        precision: str = "fp32",
    ):
        model._require_built()
        super().__init__(
            model.lm,
            model.trie,
            pad_id=0,
            prefix_cache=prefix_cache,
            default_beam_size=model.config.beam_size,
            sparse_head=sparse_head,
            spec_budget=spec_budget,
            precision=precision,
        )
        self.model = model

    def encode_history(self, history: Sequence[int], template_id: int = 0) -> list[int]:
        return self.encode_instruction(self.model.seq_instruction(list(history), template_id))

    def encode_instruction(self, instruction: str) -> list[int]:
        return self.model.encode_instruction(instruction)

    def encode_intention(self, intention_text: str) -> list[int]:
        return self.encode_instruction(self.model.intention_instruction(intention_text))


class P5CIDEngine(TrieDecoderEngine):
    """The P5-CID adapter: collaborative-ID prompts over the shared stepper.

    P5-CID's decoder-only LM speaks the same decode contract as LC-Rec, so
    the adapter inherits continuous batching and (optionally) the prefix
    cache; only the prompt rendering (BOS + history ids + SEP, no natural
    language) and the full-``top_k`` ranking guarantee differ.
    """

    name = "p5cid"

    def __init__(
        self,
        model: "P5CID",
        prefix_cache: PrefixKVCache | bool | None = None,
        sparse_head: bool = True,
        spec_budget: int = DEFAULT_SPEC_BUDGET,
        precision: str = "fp32",
    ):
        # Lazy import: repro.baselines must stay importable without pulling
        # the serving package in (and vice versa).
        from ..baselines.generative import PAD_ID

        super().__init__(
            model.lm,
            model.trie,
            pad_id=PAD_ID,
            prefix_cache=prefix_cache,
            default_beam_size=model.config.beam_size,
            sparse_head=sparse_head,
            spec_budget=spec_budget,
            precision=precision,
        )
        self.model = model

    def encode_history(self, history: Sequence[int], template_id: int = 0) -> list[int]:
        if template_id != 0:
            raise ValueError("P5-CID has a single prompt format (template_id 0)")
        return self.model._example(list(history), None)[0]

    def finalize(self, requests, all_hypotheses) -> list[list[int]]:
        return widen_and_backfill(self, requests, all_hypotheses)


# ----------------------------------------------------------------------
# TIGER: batched encoder-decoder beam expansion
# ----------------------------------------------------------------------
@dataclass
class TIGERDecodeState:
    """Resumable state of a batched TIGER decode (satisfies EngineState).

    The encoder runs once per micro-batch at prefill; each step re-decodes
    every hypothesis's full (``<= num_levels``-token) prefix against the
    per-row encoder memory, expanded to ``B*K`` decoder rows.  Requests
    with fewer than ``K`` legal hypotheses carry ``-inf``-scored filler
    beams to keep the batch rectangular; fillers are dropped at
    retirement.
    """

    memory: Tensor  # (B, S, dim) encoder output
    memory_mask: np.ndarray  # (B, 1, 1, S) key padding mask
    beam_tokens: list[list[tuple[int, ...]]]  # (B rows) x (K prefixes)
    beam_scores: np.ndarray  # (B, K) float64
    num_beams: int
    num_levels: int
    tags: list
    # Beam-flattened (B*K, ...) views of memory/memory_mask, built lazily
    # on the first step and reused across trie levels (rows only change at
    # retirement, which invalidates them).
    memory_flat: Tensor | None = None
    memory_mask_flat: np.ndarray | None = None
    # Model forwards run so far (encoder + decoder passes): the forced and
    # speculative fast paths exist to push this below one per trie level.
    forwards: int = 0

    @property
    def num_rows(self) -> int:
        return len(self.beam_tokens)

    @property
    def done(self) -> bool:
        return all(len(row[0]) == self.num_levels for row in self.beam_tokens)

    def finished_rows(self) -> list[int]:
        return [b for b, row in enumerate(self.beam_tokens) if len(row[0]) == self.num_levels]


class TIGEREngine(GenerativeEngine):
    """The TIGER adapter: batched encoder-decoder trie-constrained beams.

    Each prefill encodes the whole micro-batch's histories in one
    bidirectional encoder forward (pad columns masked as keys, so batching
    never changes any row's memory); each step expands ``B`` requests ×
    ``K`` beams in a single decoder forward with one vectorized trie mask,
    replacing TIGER's per-request, per-level Python loop.  Rankings match
    ``TIGER.recommend`` request-for-request, including its widen-to-catalog
    retry and deterministic backfill (:func:`widen_and_backfill`).

    No continuous batching: the encoder memory is a closed per-batch
    rectangle, so admission would need memory joins — a future adapter
    capability, which is exactly what the ``supports_continuous`` flag is
    for.
    """

    name = "tiger"
    supports_continuous = False
    supports_prefix_cache = False
    supports_sparse_head = True
    supports_replication = True
    supports_narrowing = True

    def __init__(
        self,
        model: "TIGER",
        sparse_head: bool = True,
        spec_budget: int = DEFAULT_SPEC_BUDGET,
        precision: str = "fp32",
    ):
        # Lazy import keeps repro.serving importable without the baselines
        # package (and avoids an import cycle with baselines.tiger).
        from ..baselines.generative import BOS_ID, PAD_ID

        self.model = model
        self.trie = model.trie
        self.pad_id = PAD_ID
        self.bos_id = BOS_ID
        self.default_beam_size = model.config.beam_size
        self.sparse_head = sparse_head
        # As in TrieDecoderEngine: speculation rides the sparse gathered
        # head, so the dense baseline always steps one level at a time.
        # TIGER has no KV cache or fused QKV, so ``precision`` governs the
        # gathered output-head GEMM only.
        self.spec_budget = int(spec_budget) if sparse_head else 0
        self.precision = validate_precision(precision)
        self.narrow = None

    @property
    def num_levels(self) -> int:
        return self.model.num_levels

    @property
    def num_items(self) -> int:
        return self.trie.num_items

    def effective_beams(self, beam_size: int) -> int:
        # A trie with uniform-depth leaves has at most num_items distinct
        # prefixes at every level, so wider beams only add -inf fillers.
        return min(beam_size, self.num_items)

    def replicate(self) -> "TIGEREngine":
        """A worker-private engine over a serving replica of the model.

        TIGER keeps all its decode state per :class:`TIGERDecodeState`;
        the only cross-decode mutable state is the model's gathered-head
        memo, which the serving replica privatizes (weights stay shared).
        """
        clone = copy.copy(self)
        clone.model = self.model.serving_replica()
        return clone

    def narrowed(self, item_ids: Sequence[int]) -> "TIGEREngine":
        """See :meth:`GenerativeEngine.narrowed`."""
        clone = copy.copy(self)
        clone.narrow = self.trie.subtrie(item_ids)
        return clone

    def encode_history(self, history: Sequence[int], template_id: int = 0) -> list[int]:
        if template_id != 0:
            raise ValueError("TIGER has a single prompt format (template_id 0)")
        model = self.model
        ids = model.space.history_ids(list(history)[-model.config.max_history :])
        return ids[-model._max_src :]

    # -- decode contract -----------------------------------------------
    def prefill(self, requests: Sequence[RecommendRequest]) -> TIGERDecodeState:
        requests = list(requests)
        num_beams = _require_uniform_beams(self, requests)
        for row, request in enumerate(requests):
            if not request.prompt_ids:
                raise ValueError(f"prompt {row} is empty: every request needs at least one token")
        model = self.model
        with no_grad():
            source = pad_sequences(
                [request.prompt_ids for request in requests],
                pad_value=self.pad_id,
                align="right",
            )
            memory, memory_mask = model.encode(source)
            bos = np.full((len(requests), 1), self.bos_id, dtype=np.int64)
            hidden = model.decode_hidden(memory, memory_mask, bos).data[:, -1, :]
        if self.sparse_head:
            root = self.trie.allowed_token_ids([()])
            logits = model.head_gather(hidden, root.union, precision=self.precision)  # (B, U)
            scores = masked_log_softmax(logits, root.mask)
            # Candidate-aware top-k: rank the real union columns only and
            # pad the leftover beam slots, rather than argpartitioning
            # over -inf filler columns (bit-identical — fillers scored
            # -inf and mapped to ``union[width - 1]`` anyway, and -inf
            # ties order real columns before fillers either way).  A
            # narrowed prefill ranks only the narrow trie's root
            # candidates (renormalisation stays over the full root union).
            if self.narrow is None:
                selectable = None
                width = root.num_candidates
            else:
                selectable = _narrow_positions(root.union, self.narrow.allowed_tokens(()))
                scores = scores[:, selectable]
                width = int(selectable.size)
            order, top_scores = topk_desc(scores, min(num_beams, width))
            if num_beams > width:
                rows = scores.shape[0]
                pad_order = np.full((rows, num_beams - width), width - 1, dtype=order.dtype)
                pad_scores = np.full((rows, num_beams - width), -np.inf, dtype=top_scores.dtype)
                order = np.concatenate([order, pad_order], axis=1)
                top_scores = np.concatenate([top_scores, pad_scores], axis=1)
            if selectable is not None:
                order = selectable[order]
            order = root.union[order]
        else:
            logits = model.head_logits(hidden)  # (B, V)
            scores = masked_log_softmax(
                logits, self.trie.root_token_mask(logits.shape[-1])
            )
            if self.narrow is not None:
                scores = np.where(
                    self.narrow.root_token_mask(logits.shape[-1]), scores, -np.inf
                )
            if num_beams > scores.shape[1]:
                # The beam can be wider than the vocabulary: pad with -inf
                # filler columns so every row still carries num_beams slots.
                filler = np.full((scores.shape[0], num_beams - scores.shape[1]), -np.inf)
                scores = np.concatenate([scores, filler], axis=1)
            order, top_scores = topk_desc(scores, num_beams)
        # Filler beams (-inf) may carry arbitrary slot indices; clamp them
        # to the pad token so later decoder forwards can embed them (their
        # candidates stay -inf: a pad prefix is never in the trie, so the
        # constraint never resurrects them).
        order = np.where(np.isfinite(top_scores), order, self.pad_id)
        return TIGERDecodeState(
            memory=memory,
            memory_mask=memory_mask,
            beam_tokens=[[(int(token),) for token in row] for row in order],
            beam_scores=top_scores.astype(np.float64),
            num_beams=num_beams,
            num_levels=self.num_levels,
            tags=requests,
            forwards=2,  # the encoder pass + the BOS decoder pass
        )

    def step(self, state: TIGERDecodeState) -> None:
        if state.num_rows == 0:
            raise RuntimeError("cannot step an empty decode state")
        if state.finished_rows():
            raise RuntimeError("retire finished rows before stepping")
        model = self.model
        num_requests, num_beams = state.num_rows, state.num_beams
        prefixes = [prefix for row in state.beam_tokens for prefix in row]
        candidates_info = self.trie.allowed_token_ids(prefixes) if self.sparse_head else None
        if self.sparse_head:
            alive = np.isfinite(state.beam_scores).reshape(-1)
            if candidates_info.is_forced(alive):
                # Forced level: a singleton allowed set renormalises to
                # log-probability 0.0, so append with no decoder forward
                # at all (TIGER re-decodes the full prefix each level —
                # there is no KV cache to catch up later).
                forced = candidates_info.forced_tokens(self.pad_id)
                state.beam_tokens = [
                    [
                        prefix + (int(forced[b * num_beams + k]),)
                        for k, prefix in enumerate(row)
                    ]
                    for b, row in enumerate(state.beam_tokens)
                ]
                return
            levels = np.array([len(p) for p in prefixes], dtype=np.int64)
            if self.spec_budget > 1 and _speculative_window_open(
                self.trie, self.spec_budget, levels, candidates_info, alive, prefixes
            ):
                self._speculative_step(state, candidates_info, alive, prefixes)
                return
        decoder_input = np.array(
            [(self.bos_id,) + prefix for prefix in prefixes], dtype=np.int64
        )  # (B*K, level+1)
        with no_grad():
            if state.memory_flat is None:
                state.memory_flat = Tensor(np.repeat(state.memory.data, num_beams, axis=0))
                state.memory_mask_flat = np.repeat(state.memory_mask, num_beams, axis=0)
            hidden = model.decode_hidden(
                state.memory_flat, state.memory_mask_flat, decoder_input
            ).data[:, -1, :]
            state.forwards += 1
        if self.sparse_head:
            if self.narrow is None:
                union = candidates_info.union
                width = candidates_info.num_candidates
                logits = model.head_gather(hidden, union, precision=self.precision)
                step_logp = masked_log_softmax(logits, candidates_info.mask)
            else:
                union, norm_mask, keep = _narrowed_step_candidates(
                    candidates_info, self.narrow, prefixes, alive
                )
                width = int(union.shape[0])
                logits = model.head_gather(hidden, union, precision=self.precision)
                step_logp = np.where(keep, masked_log_softmax(logits, norm_mask), -np.inf)
        else:
            union = None
            logits = model.head_logits(hidden)  # (B*K, V)
            width = logits.shape[-1]
            mask = self.trie.allowed_token_mask(prefixes, width)
            step_logp = masked_log_softmax(logits, mask)
            if self.narrow is not None:
                keep = self.narrow.allowed_token_mask(prefixes, width)
                step_logp = np.where(keep, step_logp, -np.inf)
        origin, token, state.beam_scores = select_beams(
            step_logp, state.beam_scores, num_beams, width, union
        )
        state.beam_tokens = [
            [
                state.beam_tokens[b][int(origin[b, k])] + (int(token[b, k]),)
                for k in range(num_beams)
            ]
            for b in range(num_requests)
        ]

    def _speculative_step(
        self,
        state: TIGERDecodeState,
        candidates_info,
        alive: np.ndarray,
        prefixes: list[tuple[int, ...]],
    ) -> None:
        """Advance two trie levels with a single decoder forward.

        The encoder-decoder shape of the :class:`DecodeState` stepper's
        speculative step (see ``repro.llm.generation``): TIGER re-decodes
        every hypothesis's full prefix each level and keeps no KV cache,
        so instead of sibling columns inside one sequence, each beam's
        level-``i`` candidates become ``n_max`` *rows* — uniform-length
        sequences ``(BOS,) + prefix + (candidate,)`` against ``n_max``
        repeats of the beam's encoder memory.  Causality makes position
        ``-2`` of every sibling row identical (it never sees the
        candidate), so the first sibling's ``-2`` hidden state is the
        level-``i`` head input and each row's ``-1`` hidden state is its
        candidate's level-``i+1`` input.  One gathered-head GEMM over the
        two levels' union scores both selection passes; rankings match
        two sequential steps exactly (same hidden states, same
        constrained log-softmax, same ``select_beams``).
        """
        model = self.model
        trie = self.trie
        num_requests, num_beams = state.num_rows, state.num_beams
        level = len(prefixes[0])
        per_row = candidates_info.per_row
        flat_rows = len(prefixes)
        n_max = max(ids.size for ids in per_row)

        cand_tokens = np.full((flat_rows, n_max), self.pad_id, dtype=np.int64)
        for row, ids in enumerate(per_row):
            if ids.size:
                cand_tokens[row, : ids.size] = ids
        # (flat_rows * n_max, level + 2): every sibling row is the beam's
        # BOS-prefixed prefix plus one candidate.
        base_input = np.array(
            [(self.bos_id,) + prefix for prefix in prefixes], dtype=np.int64
        )
        decoder_input = np.concatenate(
            [
                np.repeat(base_input, n_max, axis=0),
                cand_tokens.reshape(-1, 1),
            ],
            axis=1,
        )
        with no_grad():
            if state.memory_flat is None:
                state.memory_flat = Tensor(np.repeat(state.memory.data, num_beams, axis=0))
                state.memory_mask_flat = np.repeat(state.memory_mask, num_beams, axis=0)
            memory_spec = Tensor(np.repeat(state.memory_flat.data, n_max, axis=0))
            memory_mask_spec = np.repeat(state.memory_mask_flat, n_max, axis=0)
            hidden = model.decode_hidden(memory_spec, memory_mask_spec, decoder_input).data
            state.forwards += 1
        dim = hidden.shape[-1]
        hidden = hidden.reshape(flat_rows, n_max, level + 2, dim)
        # Level-i head input (position -2, identical across siblings) then
        # each sibling's level-i+1 input (position -1): (flat, 1+n_max, dim).
        head_in = np.concatenate([hidden[:, :1, -2, :], hidden[:, :, -1, :]], axis=1)
        pair_union = trie.union_for_levels((level, level + 1))
        logits_all = model.head_gather(
            head_in.reshape(-1, dim), pair_union, precision=self.precision
        ).reshape(flat_rows, 1 + n_max, pair_union.shape[0])

        # --- Level-i selection (identical to a sequential step's) ---
        if self.narrow is None:
            union0 = candidates_info.union
            width0 = candidates_info.num_candidates
            logits0 = logits_all[:, 0, np.searchsorted(pair_union, union0)]
            step_logp0 = masked_log_softmax(logits0, candidates_info.mask)
        else:
            union0, norm_mask0, keep0 = _narrowed_step_candidates(
                candidates_info, self.narrow, prefixes, alive
            )
            width0 = int(union0.shape[0])
            logits0 = logits_all[:, 0, np.searchsorted(pair_union, union0)]
            step_logp0 = np.where(keep0, masked_log_softmax(logits0, norm_mask0), -np.inf)
        origin1, token1, mid_scores = select_beams(
            step_logp0, state.beam_scores, num_beams, width0, union0
        )
        mid_tokens = [
            [
                state.beam_tokens[b][int(origin1[b, k])] + (int(token1[b, k]),)
                for k in range(num_beams)
            ]
            for b in range(num_requests)
        ]
        flat_origin1 = (np.arange(num_requests)[:, None] * num_beams + origin1).reshape(-1)
        # Which sibling row each committed beam corresponds to; dead
        # (-inf) beams clamp into range, harmlessly (never revived).
        token1_flat = token1.reshape(-1)
        chosen = np.zeros(flat_rows, dtype=np.int64)
        for i, src in enumerate(flat_origin1):
            ids = per_row[int(src)]
            if ids.size:
                chosen[i] = min(int(np.searchsorted(ids, token1_flat[i])), ids.size - 1)

        # --- Level-i+1 selection from the committed siblings' logits ---
        new_prefixes = [prefix for row in mid_tokens for prefix in row]
        mid_alive = np.isfinite(mid_scores).reshape(-1)
        candidates_next = trie.allowed_token_ids(new_prefixes)
        row_logits = logits_all[flat_origin1, 1 + chosen]  # (flat_rows, |pair|)
        if self.narrow is None:
            union1 = candidates_next.union
            width1 = candidates_next.num_candidates
            logits1 = row_logits[:, np.searchsorted(pair_union, union1)]
            step_logp1 = masked_log_softmax(logits1, candidates_next.mask)
        else:
            union1, norm_mask1, keep1 = _narrowed_step_candidates(
                candidates_next, self.narrow, new_prefixes, mid_alive
            )
            width1 = int(union1.shape[0])
            logits1 = row_logits[:, np.searchsorted(pair_union, union1)]
            step_logp1 = np.where(keep1, masked_log_softmax(logits1, norm_mask1), -np.inf)
        origin2, token2, state.beam_scores = select_beams(
            step_logp1, mid_scores, num_beams, width1, union1
        )
        state.beam_tokens = [
            [
                mid_tokens[b][int(origin2[b, k])] + (int(token2[b, k]),)
                for k in range(num_beams)
            ]
            for b in range(num_requests)
        ]

    def retire(
        self, state: TIGERDecodeState, rows: Sequence[int]
    ) -> list[list[BeamHypothesis]]:
        rows = [int(row) for row in rows]
        if len(set(rows)) != len(rows):
            raise ValueError("duplicate rows in retirement")
        results: list[list[BeamHypothesis]] = []
        for row in rows:
            if not 0 <= row < state.num_rows:
                raise IndexError(f"row {row} out of range for {state.num_rows} rows")
            if len(state.beam_tokens[row][0]) != state.num_levels:
                raise ValueError(f"row {row} has not reached the final trie level")
            hypotheses = [
                BeamHypothesis(prefix, float(score), self.trie.item_at(prefix))
                for prefix, score in zip(state.beam_tokens[row], state.beam_scores[row])
                if np.isfinite(score)
            ]
            hypotheses.sort(key=lambda h: -h.score)
            results.append(hypotheses)
        if rows:
            retired = set(rows)
            keep = [b for b in range(state.num_rows) if b not in retired]
            state.memory = Tensor(state.memory.data[keep])
            state.memory_mask = state.memory_mask[keep]
            state.memory_flat = None
            state.memory_mask_flat = None
            state.beam_tokens = [state.beam_tokens[b] for b in keep]
            state.beam_scores = state.beam_scores[keep]
            state.tags = [state.tags[b] for b in keep]
        return results

    def finalize(self, requests, all_hypotheses) -> list[list[int]]:
        return widen_and_backfill(self, requests, all_hypotheses)
