"""Item indexing pipelines, including the Fig. 2 ablation variants.

* ``semantic`` (+USM) — the LC-Rec indexing: RQ-VAE over LLM text
  embeddings with uniform-semantic-mapping conflict resolution.
* ``semantic`` with ``strategy='extra_level'`` — *LC-Rec w/o USM*.
* ``vanilla`` — one unique token per item (traditional item IDs).
* ``random`` — multi-level indices with randomly sampled codewords
  (structure without semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..quantization import (
    RQVAE,
    IndexConflictError,
    RQVAEConfig,
    RQVAETrainer,
    RQVAETrainerConfig,
    ItemIndexSet,
    build_semantic_indices,
    pairwise_sq_distances,
)

__all__ = [
    "SemanticIndexerConfig",
    "build_semantic_index_set",
    "build_vanilla_index_set",
    "build_random_index_set",
    "encode_new_item",
]


@dataclass
class SemanticIndexerConfig:
    """RQ-VAE settings for the semantic indexing pipeline."""

    rqvae: RQVAEConfig = field(default_factory=RQVAEConfig)
    trainer: RQVAETrainerConfig = field(default_factory=RQVAETrainerConfig)
    strategy: str = "usm"


def build_semantic_index_set(
    embeddings: np.ndarray,
    config: SemanticIndexerConfig,
) -> tuple[ItemIndexSet, RQVAE, list[dict[str, float]]]:
    """Train an RQ-VAE on ``embeddings`` and construct item indices.

    Returns the index set, the trained RQ-VAE (kept for analysis) and the
    training history.
    """
    embeddings = np.asarray(embeddings, dtype=np.float32)
    rq_config = config.rqvae
    if rq_config.input_dim != embeddings.shape[1]:
        raise ValueError(
            f"RQVAEConfig.input_dim={rq_config.input_dim} but embeddings "
            f"have dim {embeddings.shape[1]}"
        )
    model = RQVAE(rq_config)
    trainer = RQVAETrainer(model, config.trainer)
    history = trainer.fit(embeddings)
    index_set = build_semantic_indices(model, embeddings, strategy=config.strategy)
    return index_set, model, history


def encode_new_item(
    rqvae: RQVAE,
    embedding: np.ndarray,
    taken: set[tuple[int, ...]],
) -> np.ndarray:
    """Encode one *new* item's semantic codes through a trained RQ-VAE.

    The online counterpart of :func:`build_semantic_index_set`'s batch
    pipeline: the (already text-embedded) item is quantized greedily per
    level, and if the greedy tuple collides with an index in ``taken``
    (the catalog's existing code tuples), a deterministic single-item
    variant of the USM spill resolves it — first the free last-level codes
    nearest the item's last residual, then progressively farther parent
    centers with the last level re-quantized under each (mirroring
    ``resolve_conflicts_usm``'s spill).  Ties are broken by code index, so
    the same embedding against the same catalog always produces the same
    sequence.  Raises :class:`IndexConflictError` when every reachable
    code tuple is taken.
    """
    embedding = np.asarray(embedding, dtype=np.float32)
    if embedding.ndim != 1:
        raise ValueError(f"expected one embedding vector, got shape {embedding.shape}")
    result = rqvae.quantize(embedding[None, :])
    codes = result.codes[0].astype(np.int64)
    num_levels = codes.shape[0]
    codebooks = [book.vectors.data for book in rqvae.codebooks]

    def nearest_order(residual: np.ndarray, book: np.ndarray) -> np.ndarray:
        distances = pairwise_sq_distances(residual[None, :], book)[0]
        return np.argsort(distances, kind="stable")

    def free(candidate: np.ndarray) -> bool:
        return tuple(int(c) for c in candidate) not in taken

    if free(codes):
        return codes
    last_book = codebooks[-1]
    for code in nearest_order(result.level_residuals[0, -1], last_book):
        candidate = codes.copy()
        candidate[-1] = int(code)
        if free(candidate):
            return candidate
    if num_levels < 2:
        raise IndexConflictError(
            "every last-level code is taken and there is no higher level to "
            "spill to; increase codebook_size"
        )
    parent_level = num_levels - 2
    parent_book = codebooks[parent_level]
    parent_residual = result.level_residuals[0, parent_level]
    for parent in nearest_order(parent_residual, parent_book):
        if int(parent) == int(codes[parent_level]):
            continue  # the greedy parent's last-level codes were tried above
        new_last_residual = parent_residual - parent_book[int(parent)]
        for code in nearest_order(new_last_residual, last_book):
            candidate = codes.copy()
            candidate[parent_level] = int(parent)
            candidate[-1] = int(code)
            if free(candidate):
                return candidate
    raise IndexConflictError(
        "index space exhausted around the new item's prefix; "
        "increase codebook_size or num_levels"
    )


def build_vanilla_index_set(num_items: int) -> ItemIndexSet:
    """Traditional single-token item IDs (Fig. 2 "Vanilla ID")."""
    if num_items < 1:
        raise ValueError("num_items must be positive")
    codes = np.arange(num_items, dtype=np.int64)[:, None]
    return ItemIndexSet(codes, [num_items])


def build_random_index_set(
    num_items: int, num_levels: int, codebook_size: int, rng: np.random.Generator
) -> ItemIndexSet:
    """Random multi-level indices (Fig. 2 "Random Indices").

    Codewords are sampled uniformly; collisions are fixed by re-rolling the
    last level, so indices are unique but semantically unrelated.
    """
    if codebook_size**num_levels < num_items:
        raise ValueError("index space too small for the item count")
    codes = rng.integers(0, codebook_size, size=(num_items, num_levels)).astype(np.int64)
    seen: set[tuple[int, ...]] = set()
    for item in range(num_items):
        row = tuple(codes[item])
        attempts = 0
        while row in seen:
            codes[item, -1] = rng.integers(0, codebook_size)
            row = tuple(codes[item])
            attempts += 1
            if attempts > 10 * codebook_size:
                # Extremely crowded prefix: re-roll the whole row.
                codes[item] = rng.integers(0, codebook_size, size=num_levels)
                row = tuple(codes[item])
                attempts = 0
        seen.add(row)
    return ItemIndexSet(codes, [codebook_size] * num_levels)
