"""Item indexing pipelines, including the Fig. 2 ablation variants.

* ``semantic`` (+USM) — the LC-Rec indexing: RQ-VAE over LLM text
  embeddings with uniform-semantic-mapping conflict resolution.
* ``semantic`` with ``strategy='extra_level'`` — *LC-Rec w/o USM*.
* ``vanilla`` — one unique token per item (traditional item IDs).
* ``random`` — multi-level indices with randomly sampled codewords
  (structure without semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..quantization import (
    RQVAE,
    RQVAEConfig,
    RQVAETrainer,
    RQVAETrainerConfig,
    ItemIndexSet,
    build_semantic_indices,
)

__all__ = [
    "SemanticIndexerConfig",
    "build_semantic_index_set",
    "build_vanilla_index_set",
    "build_random_index_set",
]


@dataclass
class SemanticIndexerConfig:
    """RQ-VAE settings for the semantic indexing pipeline."""

    rqvae: RQVAEConfig = field(default_factory=RQVAEConfig)
    trainer: RQVAETrainerConfig = field(default_factory=RQVAETrainerConfig)
    strategy: str = "usm"


def build_semantic_index_set(
    embeddings: np.ndarray,
    config: SemanticIndexerConfig,
) -> tuple[ItemIndexSet, RQVAE, list[dict[str, float]]]:
    """Train an RQ-VAE on ``embeddings`` and construct item indices.

    Returns the index set, the trained RQ-VAE (kept for analysis) and the
    training history.
    """
    embeddings = np.asarray(embeddings, dtype=np.float32)
    rq_config = config.rqvae
    if rq_config.input_dim != embeddings.shape[1]:
        raise ValueError(
            f"RQVAEConfig.input_dim={rq_config.input_dim} but embeddings "
            f"have dim {embeddings.shape[1]}"
        )
    model = RQVAE(rq_config)
    trainer = RQVAETrainer(model, config.trainer)
    history = trainer.fit(embeddings)
    index_set = build_semantic_indices(model, embeddings, strategy=config.strategy)
    return index_set, model, history


def build_vanilla_index_set(num_items: int) -> ItemIndexSet:
    """Traditional single-token item IDs (Fig. 2 "Vanilla ID")."""
    if num_items < 1:
        raise ValueError("num_items must be positive")
    codes = np.arange(num_items, dtype=np.int64)[:, None]
    return ItemIndexSet(codes, [num_items])


def build_random_index_set(
    num_items: int, num_levels: int, codebook_size: int, rng: np.random.Generator
) -> ItemIndexSet:
    """Random multi-level indices (Fig. 2 "Random Indices").

    Codewords are sampled uniformly; collisions are fixed by re-rolling the
    last level, so indices are unique but semantically unrelated.
    """
    if codebook_size**num_levels < num_items:
        raise ValueError("index space too small for the item count")
    codes = rng.integers(0, codebook_size, size=(num_items, num_levels)).astype(np.int64)
    seen: set[tuple[int, ...]] = set()
    for item in range(num_items):
        row = tuple(codes[item])
        attempts = 0
        while row in seen:
            codes[item, -1] = rng.integers(0, codebook_size)
            row = tuple(codes[item])
            attempts += 1
            if attempts > 10 * codebook_size:
                # Extremely crowded prefix: re-roll the whole row.
                codes[item] = rng.integers(0, codebook_size, size=num_levels)
                row = tuple(codes[item])
                attempts = 0
        seen.add(row)
    return ItemIndexSet(codes, [codebook_size] * num_levels)
