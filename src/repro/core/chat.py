"""Multi-turn recommendation sessions (the paper's stated future work).

The LC-Rec conclusion proposes extending the model "in a multi-turn chat
setting, so that it can support more flexible interaction with users".
:class:`ChatSession` implements the session layer on top of the tuned
model: it keeps the running interaction history, lets the user accept or
reject recommendations, supports intention queries mid-session, and never
re-recommends rejected or already-consumed items.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lcrec import LCRec

__all__ = ["ChatTurn", "ChatSession"]


@dataclass
class ChatTurn:
    """One interaction round: what was asked and what was recommended."""

    query: str | None
    recommendations: list[int]
    accepted: int | None = None


@dataclass
class ChatSession:
    """Stateful multi-turn wrapper around a built :class:`LCRec` model.

    >>> session = ChatSession(model, history=[3, 17, 42])
    >>> items = session.recommend()
    >>> session.reject(items[0])
    >>> items = session.recommend()          # excludes the rejected item
    >>> session.accept(items[0])             # joins the history
    """

    model: LCRec
    history: list[int] = field(default_factory=list)
    rejected: set[int] = field(default_factory=set)
    turns: list[ChatTurn] = field(default_factory=list)
    over_generate: int = 3

    # ------------------------------------------------------------------
    def _filter(self, ranked: list[int], top_k: int) -> list[int]:
        excluded = self.rejected | set(self.history)
        kept = [item for item in ranked if item not in excluded]
        return kept[:top_k]

    def recommend(self, top_k: int = 5) -> list[int]:
        """Next-item recommendations excluding rejected/consumed items."""
        if not self.history:
            raise ValueError("session needs at least one historical item")
        raw = self.model.recommend(
            self.history, top_k=top_k * self.over_generate)
        ranked = self._filter(raw, top_k)
        self.turns.append(ChatTurn(query=None, recommendations=ranked))
        return ranked

    def ask(self, intention: str, top_k: int = 5) -> list[int]:
        """Intention-query recommendations (search-engine style turn)."""
        raw = self.model.recommend_for_intention(
            intention, top_k=top_k * self.over_generate)
        ranked = self._filter(raw, top_k)
        self.turns.append(ChatTurn(query=intention, recommendations=ranked))
        return ranked

    def ask_many(self, intentions: list[str], top_k: int = 5) -> list[list[int]]:
        """Several intention queries in one batched decode.

        Each query still becomes its own :class:`ChatTurn`, but all of them
        share a single ``B`` × ``K``-beam constrained beam search instead of
        one model pass per query.
        """
        raw_lists = self.model.recommend_for_intentions(
            intentions, top_k=top_k * self.over_generate)
        results = []
        for intention, raw in zip(intentions, raw_lists):
            ranked = self._filter(raw, top_k)
            self.turns.append(ChatTurn(query=intention, recommendations=ranked))
            results.append(ranked)
        return results

    # ------------------------------------------------------------------
    def accept(self, item_id: int) -> None:
        """User takes a recommendation: it becomes part of the history."""
        self._validate_item(item_id)
        self.history.append(item_id)
        if self.turns:
            self.turns[-1].accepted = item_id

    def reject(self, item_id: int) -> None:
        """User dismisses an item: it is never recommended again."""
        self._validate_item(item_id)
        self.rejected.add(item_id)

    def describe(self, item_id: int) -> str:
        """Explain a recommendation with the item's catalog entry."""
        self._validate_item(item_id)
        item = self.model.dataset.catalog[item_id]
        return f"{item.title} — {item.description}"

    def _validate_item(self, item_id: int) -> None:
        if not 0 <= item_id < len(self.model.dataset.catalog):
            raise ValueError(f"unknown item id {item_id}")

    @property
    def num_turns(self) -> int:
        return len(self.turns)
