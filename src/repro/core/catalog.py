"""Live catalog: online item ingestion with versioned copy-on-write swaps.

Everywhere else in the repository the item catalog is a build-time
constant: the RQ-VAE assigns indices once, :meth:`ItemIndexSet.build_trie`
freezes them into an :class:`~repro.quantization.IndexTrie`, and every
serving component (engines, caches, retrieval) closes over that one trie
forever.  Real catalogs churn — new items arrive while requests are being
decoded — so this module turns the catalog into a first-class *versioned
runtime object*:

* :class:`CatalogVersion` is one immutable snapshot: a trie, the index
  set behind it and (optionally) the retrieval tier, all consistent with
  each other.  Snapshots share almost all of their storage with their
  predecessor (copy-on-write: only the arrays along the inserted trie
  path and the touched KNN cluster are new objects), so holding several
  versions alive is cheap and — crucially — unchanged per-prefix arrays
  keep their *identity*, which keeps the engines' gathered-head weight
  memos warm across a swap.
* :class:`LiveCatalog` owns the current version and publishes new ones
  atomically.  ``ingest`` encodes a new item's semantic indices through
  the trained RQ-VAE on the fly (greedy codes, then the USM-style
  nearest-alternative walk of :func:`repro.core.indexer.encode_new_item`
  when the greedy tuple collides), inserts it into a trie snapshot, and
  swaps ``catalog.version`` in one reference assignment.

Version pinning is what makes ingestion safe under load: a decode state
holds the trie *object* it was prefilled against, so an in-flight decode
finishes bit-identically against its pinned version no matter how many
swaps happen mid-decode, while the next prefill picks up the new version.
The serving engines read ``catalog.version`` exactly once per prefill and
gate joins on trie identity (:meth:`TrieDecoderEngine.can_join`), and the
prompt-prefix K/V cache is version-stamped so entries that a future
re-encode invalidates are dropped exactly then
(:meth:`repro.llm.PrefixKVCache.sync_catalog`) — pure ingestion
invalidates nothing, because prompt K/V never depends on the trie.

Thread safety: ``ingest`` serialises writers behind a lock; readers are
lock-free (``catalog.version`` is one attribute load, atomic in CPython).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..quantization import RQVAE, IndexTrie, ItemIndexSet
from ..quantization.indexing import code_token_strings
from ..text import WordTokenizer
from .indexer import encode_new_item

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..retrieval import RetrievalRecommender
    from .lcrec import LCRec

__all__ = ["CatalogVersion", "IngestedItem", "LiveCatalog"]


@dataclass(frozen=True)
class CatalogVersion:
    """One immutable catalog snapshot; everything in it is consistent.

    Attributes
    ----------
    version:
        Monotonic counter, starting at 0 for the build-time catalog.
        Caches stamp themselves with it (:meth:`PrefixKVCache.sync_catalog`)
        so invalidation is idempotent per version.
    trie:
        The decoding trie over this version's items.  Decode states pin
        this *object*; identity comparison is version comparison.
    index_set:
        The per-item codes behind the trie (row ``i`` = item ``i``).
    retrieval:
        The retrieval tier over the same items, or ``None`` when the
        catalog was built without one.
    stale_tokens:
        Index-token ids whose meaning changed relative to the *previous*
        version — prompts containing them must drop their cached K/V.
        Pure ingestion never remaps a token, so this is empty today; a
        future re-encode (items moving to new codes) would list the
        remapped tokens here and the cache sync does the rest.
    """

    version: int
    trie: IndexTrie
    index_set: ItemIndexSet
    retrieval: "RetrievalRecommender | None" = None
    stale_tokens: tuple[int, ...] = ()

    @property
    def num_items(self) -> int:
        return self.index_set.num_items


@dataclass(frozen=True)
class IngestedItem:
    """What one :meth:`LiveCatalog.ingest` call produced."""

    item_id: int
    codes: tuple[int, ...]
    token_ids: tuple[int, ...]
    version: CatalogVersion


class LiveCatalog:
    """The mutable head of a chain of immutable catalog versions.

    Typical use::

        catalog = model.live_catalog()          # version 0 = built catalog
        engine = model.engine()
        engine.attach_catalog(catalog)          # engine now reads the head
        service = RecommendationService(engine, fallback=catalog, ...)
        ...
        catalog.ingest(text="wireless noise cancelling headphones ...")

    After ``ingest`` returns, the next prefill decodes over the new item's
    trie while every in-flight decode finishes against its pinned
    version.  The catalog itself implements the fallback-recommender and
    hybrid-retriever protocols (``recommend`` / ``profile`` /
    ``popularity_order`` ...) by proxying the *current* version's
    retrieval tier, so the degraded-serving lane and the hybrid
    candidate lane track ingestion without being rebuilt.

    Parameters
    ----------
    trie, index_set:
        The build-time catalog (version 0).
    tokenizer:
        Maps index-token strings to ids.  Ingestion never grows the
        vocabulary: :meth:`ItemIndexSet.register` registered the *full*
        per-level token space up front, so any code the RQ-VAE can emit
        already has a token id (and the LM head already scores it).
    rqvae:
        The trained quantiser; required for ``ingest``.
    retrieval:
        Optional version-0 retrieval tier to carry along.
    embed:
        ``text -> (input_dim,) embedding`` callable; required for
        ``ingest(text=...)``.  :meth:`from_lcrec` wires the model's own
        text encoder.
    reconstruct_vectors:
        Whether retrieval vectors for new items are the RQ-VAE
        reconstruction of the embedding (matching
        :meth:`RetrievalRecommender.from_lcrec`'s default geometry) or
        the raw embedding.
    recluster_every:
        Incremental KNN inserts keep the original cluster centers; after
        this many pending inserts the retrieval tier is re-clustered from
        scratch so probe quality under churn tracks a fresh build.
    """

    def __init__(
        self,
        trie: IndexTrie,
        index_set: ItemIndexSet,
        tokenizer: WordTokenizer,
        rqvae: RQVAE | None = None,
        retrieval: "RetrievalRecommender | None" = None,
        *,
        embed: Callable[[str], np.ndarray] | None = None,
        reconstruct_vectors: bool = True,
        recluster_every: int = 64,
    ):
        if recluster_every < 1:
            raise ValueError("recluster_every must be positive")
        if retrieval is not None and retrieval.num_items != index_set.num_items:
            raise ValueError(
                f"retrieval covers {retrieval.num_items} items but the index "
                f"set has {index_set.num_items}"
            )
        self.tokenizer = tokenizer
        self.rqvae = rqvae
        self.embed = embed
        self.reconstruct_vectors = reconstruct_vectors
        self.recluster_every = recluster_every
        self._version = CatalogVersion(0, trie, index_set, retrieval)
        self._taken = {tuple(int(c) for c in row) for row in index_set.codes}
        self._ingest_lock = threading.Lock()
        self.ingested = 0  # successful ingest() calls

    # ------------------------------------------------------------------
    # Lock-free read side
    # ------------------------------------------------------------------
    @property
    def version(self) -> CatalogVersion:
        """The current snapshot (one atomic attribute load)."""
        return self._version

    @property
    def trie(self) -> IndexTrie:
        return self._version.trie

    @property
    def index_set(self) -> ItemIndexSet:
        return self._version.index_set

    @property
    def num_items(self) -> int:
        return self._version.index_set.num_items

    # ------------------------------------------------------------------
    # Construction from a built model
    # ------------------------------------------------------------------
    @classmethod
    def from_lcrec(
        cls,
        model: "LCRec",
        retrieval: bool = True,
        knn_config=None,
        recluster_every: int = 64,
    ) -> "LiveCatalog":
        """A live catalog whose version 0 is ``model``'s built catalog.

        ``retrieval=True`` builds the retrieval tier from the model
        (RQ-VAE-reconstructed vectors, training-split popularity) so the
        catalog can serve as the hybrid retriever and shed-time fallback.
        New-item embeddings come from the model's own text encoder, the
        same one that produced the build-time item embeddings.
        """
        model._require_built()
        if model.rqvae is None:
            raise ValueError(
                "LCRec was built without an RQ-VAE (index_source="
                f"{model.config.index_source!r}); online ingestion needs one "
                "to encode new items"
            )
        tier = None
        if retrieval:
            from ..retrieval import RetrievalRecommender

            tier = RetrievalRecommender.from_lcrec(model, config=knn_config)
        from ..llm import encode_texts

        lm, tokenizer = model.lm, model.tokenizer

        def embed(text: str) -> np.ndarray:
            return encode_texts(lm, tokenizer, [text])[0]

        return cls(
            model.trie,
            model.index_set,
            tokenizer,
            rqvae=model.rqvae,
            retrieval=tier,
            embed=embed,
            recluster_every=recluster_every,
        )

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def ingest(
        self,
        *,
        text: str | None = None,
        embedding: np.ndarray | None = None,
        popularity_count: int = 0,
    ) -> IngestedItem:
        """Add one item and atomically publish the next catalog version.

        Exactly one of ``text`` (encoded through the catalog's ``embed``
        callable, outside the ingest lock) and ``embedding`` (a raw
        ``(input_dim,)`` vector) must be given.  The new item's id is the
        next dense id (``num_items`` of the version it lands in), its
        semantic indices come from the RQ-VAE with conflict avoidance
        against every taken code tuple, and the returned
        :class:`IngestedItem` carries the published version so callers
        can wait for / assert on the exact swap their item rode in.
        """
        if (text is None) == (embedding is None):
            raise ValueError("pass exactly one of text= or embedding=")
        if self.rqvae is None:
            raise ValueError("catalog has no RQ-VAE; cannot encode new items")
        if text is not None:
            if self.embed is None:
                raise ValueError(
                    "catalog has no embed callable; pass embedding= instead"
                )
            embedding = self.embed(text)
        embedding = np.asarray(embedding, dtype=np.float64)

        with self._ingest_lock:
            current = self._version
            codes = encode_new_item(self.rqvae, embedding, self._taken)
            if len(codes) != current.trie.num_levels:
                raise ValueError(
                    f"RQ-VAE emits {len(codes)}-level codes but the trie has "
                    f"{current.trie.num_levels} levels (extra_level indexing "
                    "cannot ingest online; build with the usm strategy)"
                )
            token_ids = tuple(
                self.tokenizer.vocab.token_to_id(token)
                for token in code_token_strings(codes)
            )
            item_id = current.index_set.num_items
            new_trie = current.trie.with_item(item_id, token_ids)
            new_index_set = ItemIndexSet(
                np.concatenate([current.index_set.codes, codes[None, :]]),
                list(current.index_set.level_sizes),
            )
            new_retrieval = current.retrieval
            if new_retrieval is not None:
                vector = embedding
                if self.reconstruct_vectors:
                    vector = self.rqvae.reconstruct(embedding[None, :])[0]
                new_retrieval = new_retrieval.with_item(vector, popularity_count)
                if new_retrieval.index.pending_inserts >= self.recluster_every:
                    new_retrieval = new_retrieval.reclustered()
            self._taken.add(tuple(int(c) for c in codes))
            published = CatalogVersion(
                current.version + 1, new_trie, new_index_set, new_retrieval
            )
            # The swap: one reference assignment.  Readers that loaded the
            # old version keep decoding against it; the next load sees this.
            self._version = published
            self.ingested += 1
        return IngestedItem(
            item_id=item_id,
            codes=tuple(int(c) for c in codes),
            token_ids=token_ids,
            version=published,
        )

    # ------------------------------------------------------------------
    # Retrieval proxy: the catalog *is* a fallback / hybrid retriever
    # ------------------------------------------------------------------
    def _require_retrieval(self) -> "RetrievalRecommender":
        tier = self._version.retrieval
        if tier is None:
            raise RuntimeError(
                "catalog has no retrieval tier (built with retrieval=False)"
            )
        return tier

    @property
    def popularity_order(self) -> np.ndarray:
        return self._require_retrieval().popularity_order

    def profile(self, history: Sequence[int]) -> np.ndarray | None:
        return self._require_retrieval().profile(history)

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        return self._require_retrieval().recommend(history, top_k)

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10
    ) -> list[list[int]]:
        return self._require_retrieval().recommend_many(histories, top_k)
