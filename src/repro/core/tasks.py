"""Alignment-tuning task builders (paper Sec. III-C).

Builds the per-epoch instruction mixtures for the five task families:

* ``seq`` — sequential item prediction (index history -> target index);
* ``mut`` — explicit index-language alignment, both directions;
* ``asy`` — asymmetric item prediction (index history -> title, index
  history -> description, title history -> index);
* ``ite`` — item prediction from user intention (search-style and
  personalised variants);
* ``per`` — personalised preference inference (index history -> text).

Each datum is rendered with one template sampled fresh every epoch, per
the paper's anti-overfitting strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import IntentionGenerator, SequentialDataset
from ..llm.instruction import InstructionExample
from ..quantization.indexing import ItemIndexSet
from . import templates as T

__all__ = ["AlignmentTaskConfig", "AlignmentTaskBuilder", "ALL_TASKS", "EXTENSION_TASKS"]

ALL_TASKS = ("seq", "mut", "asy", "ite", "per")
# Optional extras the paper names as natural extensions (Sec. III-C3):
# bundle prediction and explanation generation.  Not part of the default
# mixture so benchmarks match the paper's recipe.
EXTENSION_TASKS = ("bun", "exp")


@dataclass
class AlignmentTaskConfig:
    """Which tasks to build and how much data per family."""

    tasks: tuple[str, ...] = ALL_TASKS
    max_history: int = 8
    min_history: int = 2
    seq_per_user: int = 3
    asy_per_user: int = 1
    ite_per_user: int = 1
    per_per_user: int = 1
    description_words: int = 14
    seed: int = 0

    def validate(self) -> None:
        unknown = set(self.tasks) - set(ALL_TASKS) - set(EXTENSION_TASKS)
        if unknown:
            raise ValueError(f"unknown tasks: {sorted(unknown)}")
        if self.min_history < 1:
            raise ValueError("min_history must be >= 1")


@dataclass
class AlignmentTaskBuilder:
    """Renders epoch-level instruction mixtures for LC-Rec tuning."""

    dataset: SequentialDataset
    index_set: ItemIndexSet
    intention_generator: IntentionGenerator | None = None
    config: AlignmentTaskConfig = field(default_factory=AlignmentTaskConfig)

    def __post_init__(self):
        self.config.validate()
        needs_intentions = "ite" in self.config.tasks
        if needs_intentions and self.intention_generator is None:
            raise ValueError("'ite' task requires an intention generator")
        self._seq_pairs = self._collect_seq_pairs()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _collect_seq_pairs(self) -> list[tuple[int, list[int], int]]:
        """All (user, history, target) pairs from the training sequences."""
        pairs = []
        cfg = self.config
        for user, seq in enumerate(self.dataset.split.train_sequences):
            for t in range(cfg.min_history, len(seq)):
                history = seq[max(0, t - cfg.max_history):t]
                pairs.append((user, history, seq[t]))
        if not pairs:
            raise ValueError("no training pairs; sequences too short")
        return pairs

    def _index_text(self, item_id: int) -> str:
        return self.index_set.index_text(item_id)

    def _history_text(self, history: list[int]) -> str:
        return " , ".join(self._index_text(i) for i in history)

    def _title_history_text(self, history: list[int]) -> str:
        return " , ".join(self.dataset.catalog[i].title for i in history)

    def _short_description(self, item_id: int) -> str:
        words = self.dataset.catalog[item_id].description.split()
        return " ".join(words[:self.config.description_words])

    @staticmethod
    def _pick(rng: np.random.Generator, options: list[str]) -> str:
        return options[int(rng.integers(len(options)))]

    def _sample_pairs(
        self, rng: np.random.Generator, per_user: int
    ) -> list[tuple[int, list[int], int]]:
        """Sample up to ``per_user`` training pairs for every user."""
        by_user: dict[int, list[int]] = {}
        for idx, (user, _, _) in enumerate(self._seq_pairs):
            by_user.setdefault(user, []).append(idx)
        picked = []
        for indices in by_user.values():
            count = min(per_user, len(indices))
            chosen = rng.choice(len(indices), size=count, replace=False)
            picked.extend(indices[int(c)] for c in chosen)
        return [self._seq_pairs[i] for i in picked]

    # ------------------------------------------------------------------
    # Task family renderers
    # ------------------------------------------------------------------
    def _seq_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        examples = []
        for _, history, target in self._sample_pairs(rng, self.config.seq_per_user):
            template = self._pick(rng, T.SEQ_TEMPLATES)
            examples.append(InstructionExample(
                instruction=template.format(history=self._history_text(history)),
                response=self._index_text(target),
                task="seq",
            ))
        return examples

    def _mut_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        examples = []
        for item_id in range(self.index_set.num_items):
            item = self.dataset.catalog[item_id]
            description = self._short_description(item_id)
            forward = self._pick(rng, T.MUT_TEXT_TO_INDEX_TEMPLATES)
            examples.append(
                InstructionExample(
                    instruction=forward.format(title=item.title, description=description),
                    response=self._index_text(item_id),
                    task="mut",
                )
            )
            backward = self._pick(rng, T.MUT_INDEX_TO_TEXT_TEMPLATES)
            examples.append(InstructionExample(
                instruction=backward.format(index=self._index_text(item_id)),
                response=T.MUT_INDEX_TO_TEXT_RESPONSE.format(
                    title=item.title, description=description),
                task="mut",
            ))
        return examples

    def _asy_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        examples = []
        for _, history, target in self._sample_pairs(rng, self.config.asy_per_user):
            variant = int(rng.integers(3))
            if variant == 0:
                template = self._pick(rng, T.ASY_INDEX_TO_TITLE_TEMPLATES)
                examples.append(InstructionExample(
                    instruction=template.format(
                        history=self._history_text(history)),
                    response=self.dataset.catalog[target].title,
                    task="asy",
                ))
            elif variant == 1:
                template = self._pick(rng, T.ASY_INDEX_TO_DESCRIPTION_TEMPLATES)
                examples.append(InstructionExample(
                    instruction=template.format(
                        history=self._history_text(history)),
                    response=self._short_description(target),
                    task="asy",
                ))
            else:
                template = self._pick(rng, T.ASY_TITLE_TO_INDEX_TEMPLATES)
                examples.append(InstructionExample(
                    instruction=template.format(
                        title_history=self._title_history_text(history)),
                    response=self._index_text(target),
                    task="asy",
                ))
        return examples

    def _ite_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        examples = []
        for _, history, target in self._sample_pairs(rng, self.config.ite_per_user):
            intention = self.intention_generator.intention_for_item(
                self.dataset.catalog[target], rng=rng,
            ).text
            if rng.random() < 0.5:
                template = self._pick(rng, T.ITE_SEARCH_TEMPLATES)
                instruction = template.format(intention=intention)
            else:
                template = self._pick(rng, T.ITE_PERSONALIZED_TEMPLATES)
                instruction = template.format(
                    history=self._history_text(history), intention=intention)
            examples.append(InstructionExample(
                instruction=instruction,
                response=self._index_text(target),
                task="ite",
            ))
        return examples

    def _per_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        examples = []
        generator = self.intention_generator
        cfg = self.config
        for user, seq in enumerate(self.dataset.split.train_sequences):
            if len(seq) < cfg.min_history or cfg.per_per_user < 1:
                continue
            history = seq[-cfg.max_history:]
            preference = generator.preference_for_history(user, history, rng=rng).text
            template = self._pick(rng, T.PER_TEMPLATES)
            examples.append(InstructionExample(
                instruction=template.format(history=self._history_text(history)),
                response=preference,
                task="per",
            ))
        return examples

    def _bun_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        """Bundle prediction: predict the next *two* items (extension)."""
        examples = []
        cfg = self.config
        for user, seq in enumerate(self.dataset.split.train_sequences):
            if len(seq) < cfg.min_history + 2:
                continue
            t = int(rng.integers(cfg.min_history, len(seq) - 1))
            history = seq[max(0, t - cfg.max_history):t]
            bundle = seq[t:t + 2]
            template = self._pick(rng, T.BUN_TEMPLATES)
            examples.append(InstructionExample(
                instruction=template.format(history=self._history_text(history)),
                response=" , ".join(self._index_text(i) for i in bundle),
                task="bun",
            ))
        return examples

    def _exp_examples(self, rng: np.random.Generator) -> list[InstructionExample]:
        """Explanation generation for a recommended item (extension)."""
        examples = []
        cfg = self.config
        lexicon = self.dataset.catalog.lexicon
        for _, history, target in self._sample_pairs(rng, 1):
            item = self.dataset.catalog[target]
            template = self._pick(rng, T.EXP_TEMPLATES)
            response = T.EXP_RESPONSE.format(
                title=item.title,
                cat=lexicon.category_names[item.category],
                keywords=" ".join(item.keywords[:3]),
            )
            examples.append(InstructionExample(
                instruction=template.format(
                    history=self._history_text(history),
                    index=self._index_text(target)),
                response=response,
                task="exp",
            ))
        return examples

    # ------------------------------------------------------------------
    def epoch_examples(self, epoch: int) -> list[InstructionExample]:
        """The instruction mixture for one training epoch."""
        rng = np.random.default_rng(self.config.seed * 1_000_003 + epoch)
        builders = {
            "seq": self._seq_examples,
            "mut": self._mut_examples,
            "asy": self._asy_examples,
            "ite": self._ite_examples,
            "per": self._per_examples,
            "bun": self._bun_examples,
            "exp": self._exp_examples,
        }
        examples: list[InstructionExample] = []
        for task in self.config.tasks:
            examples.extend(builders[task](rng))
        rng.shuffle(examples)
        return examples

    def task_counts(self, epoch: int = 0) -> dict[str, int]:
        """Number of examples per family (diagnostics)."""
        counts: dict[str, int] = {}
        for example in self.epoch_examples(epoch):
            counts[example.task] = counts.get(example.task, 0) + 1
        return counts
