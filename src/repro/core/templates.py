"""Instruction templates for the five alignment task families.

Paper Sec. IV-A4: "For each task, we designed multiple instruction
templates to enhance the instruction diversity.  During a training epoch,
each data is only combined with one sampled instruction template."  The
template wordings below follow the paper's printed examples (Sec. III-C)
with paraphrases.

Placeholders: ``{history}`` (index sequence), ``{title_history}``,
``{title}``, ``{description}``, ``{index}``, ``{intention}``.
"""

from __future__ import annotations

__all__ = [
    "SEQ_TEMPLATES",
    "MUT_TEXT_TO_INDEX_TEMPLATES",
    "MUT_INDEX_TO_TEXT_TEMPLATES",
    "MUT_INDEX_TO_TEXT_RESPONSE",
    "ASY_INDEX_TO_TITLE_TEMPLATES",
    "ASY_INDEX_TO_DESCRIPTION_TEMPLATES",
    "ASY_TITLE_TO_INDEX_TEMPLATES",
    "ITE_SEARCH_TEMPLATES",
    "ITE_PERSONALIZED_TEMPLATES",
    "PER_TEMPLATES",
    "BUN_TEMPLATES",
    "EXP_TEMPLATES",
    "EXP_RESPONSE",
    "all_template_texts",
]

# A. Sequential item prediction (Sec. III-C1). Response: target index.
SEQ_TEMPLATES = [
    (
        "here are the user's historical interactions : {history} , try to "
        "recommend another item to the user . note that the historical "
        "interactions are arranged in chronological order ."
    ),
    (
        "the user has interacted with the following items in chronological "
        "order : {history} . what should be recommended to the user next ?"
    ),
    (
        "based on the user's historical interactions : {history} , what will "
        "the user interact with next ?"
    ),
    (
        "given the interaction sequence {history} , recommend the next item "
        "for this user ."
    ),
]

# B. Explicit index-language alignment (Sec. III-C2).
MUT_TEXT_TO_INDEX_TEMPLATES = [
    (
        "an item is called {title} and described as {description} , can you "
        "tell me which item it is ?"
    ),
    ("which item has the title {title} and the description {description} ?"),
    (
        "an item is described as {description} and its title is {title} . "
        "please identify the item ."
    ),
]

MUT_INDEX_TO_TEXT_TEMPLATES = [
    (
        "please tell me what item {index} is called , along with a brief "
        "description of it ."
    ),
    "can you provide the title and a short description of the item {index} ?",
    "describe the item {index} , including its title .",
]
MUT_INDEX_TO_TEXT_RESPONSE = "item title : {title} item description : {description}"

# C1. Asymmetric item prediction (Sec. III-C3a).
ASY_INDEX_TO_TITLE_TEMPLATES = [
    (
        "based on the user's historical interactions : {history} , try to "
        "predict the title of the item that the user may need next ."
    ),
    (
        "the user interacted with {history} in order . what is the title of "
        "the next item the user needs ?"
    ),
]

ASY_INDEX_TO_DESCRIPTION_TEMPLATES = [
    (
        "here is the item interaction history of the user : {history} , "
        "please tell me what features he expects from his next item ."
    ),
    (
        "given the history {history} , describe the features and attributes "
        "the user expects from the next item ."
    ),
]

ASY_TITLE_TO_INDEX_TEMPLATES = [
    (
        "given the title sequence of user historical interactive items : "
        "{title_history} , can you recommend a suitable next item for the "
        "user ?"
    ),
    (
        "the user bought items with these titles in order : {title_history} . "
        "recommend the next item ."
    ),
]

# C2. Item prediction based on user intention (Sec. III-C3b).
ITE_SEARCH_TEMPLATES = [
    (
        "suppose you are a search engine , now a user searches that : "
        "{intention} , can you select an item to respond to the user's "
        "query ?"
    ),
    (
        "a user submits the query : {intention} . which item best answers "
        "this query ?"
    ),
]

ITE_PERSONALIZED_TEMPLATES = [
    (
        "as a recommender system , you are assisting a user who has recently "
        "interacted with the following items : {history} . the user expresses "
        "a desire to obtain another item with the following characteristics : "
        "{intention} . please recommend an item that meets these criteria ."
    ),
    (
        "the user with history {history} now wants an item with these "
        "characteristics : {intention} . select a matching item ."
    ),
]

# Extension tasks (Sec. III-C3 closing remark: "our approach can be easily
# extended to other tuning tasks ... e.g., bundle prediction and
# explanation generation").
BUN_TEMPLATES = [
    (
        "based on the user's historical interactions : {history} , recommend "
        "a bundle of two items the user is likely to need next ."
    ),
    (
        "given the history {history} , predict the next two items for this "
        "user as a bundle ."
    ),
]

EXP_TEMPLATES = [
    (
        "the user with history {history} was recommended the item {index} . "
        "explain why this item suits the user ."
    ),
    (
        "explain the recommendation of {index} to the user whose history is "
        "{history} ."
    ),
]
EXP_RESPONSE = ("the item {title} matches the user preference for {cat} "
                "items featuring {keywords}")

# C3. Personalized preference inference (Sec. III-C3c).
PER_TEMPLATES = [
    (
        "utilizing the ordered list of the user's historical interaction "
        "items as a reference , please make an informed estimation of the "
        "user's preferences . the historical interactions are as follows : "
        "{history} ."
    ),
    (
        "given the user's interaction history {history} , infer what this "
        "user prefers ."
    ),
]

_ALL_TEMPLATE_GROUPS = [
    SEQ_TEMPLATES,
    MUT_TEXT_TO_INDEX_TEMPLATES,
    MUT_INDEX_TO_TEXT_TEMPLATES,
    [MUT_INDEX_TO_TEXT_RESPONSE],
    ASY_INDEX_TO_TITLE_TEMPLATES,
    ASY_INDEX_TO_DESCRIPTION_TEMPLATES,
    ASY_TITLE_TO_INDEX_TEMPLATES,
    ITE_SEARCH_TEMPLATES,
    ITE_PERSONALIZED_TEMPLATES,
    PER_TEMPLATES,
    BUN_TEMPLATES,
    EXP_TEMPLATES,
    [EXP_RESPONSE],
]

_PLACEHOLDERS = (
    "{history}",
    "{title_history}",
    "{title}",
    "{description}",
    "{index}",
    "{intention}",
    "{cat}",
    "{keywords}",
)


def all_template_texts() -> list[str]:
    """Template prose with placeholders stripped (for vocabulary building)."""
    texts = []
    for group in _ALL_TEMPLATE_GROUPS:
        for template in group:
            text = template
            for placeholder in _PLACEHOLDERS:
                text = text.replace(placeholder, " ")
            texts.append(text)
    return texts
