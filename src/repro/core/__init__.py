"""LC-Rec core: indexing pipelines, alignment tasks and the full model."""

from .chat import ChatSession, ChatTurn
from .indexer import (
    SemanticIndexerConfig,
    build_random_index_set,
    build_semantic_index_set,
    build_vanilla_index_set,
)
from .lcrec import LCRec, LCRecConfig
from .tasks import (
    ALL_TASKS,
    EXTENSION_TASKS,
    AlignmentTaskBuilder,
    AlignmentTaskConfig,
)

__all__ = [
    "LCRec",
    "LCRecConfig",
    "ChatSession",
    "ChatTurn",
    "AlignmentTaskBuilder",
    "AlignmentTaskConfig",
    "ALL_TASKS",
    "EXTENSION_TASKS",
    "SemanticIndexerConfig",
    "build_semantic_index_set",
    "build_vanilla_index_set",
    "build_random_index_set",
]
