"""LC-Rec core: indexing pipelines, alignment tasks and the full model."""

from .catalog import CatalogVersion, IngestedItem, LiveCatalog
from .chat import ChatSession, ChatTurn
from .indexer import (
    SemanticIndexerConfig,
    build_random_index_set,
    build_semantic_index_set,
    build_vanilla_index_set,
    encode_new_item,
)
from .lcrec import LCRec, LCRecConfig
from .tasks import (
    ALL_TASKS,
    EXTENSION_TASKS,
    AlignmentTaskBuilder,
    AlignmentTaskConfig,
)

__all__ = [
    "LCRec",
    "LCRecConfig",
    "CatalogVersion",
    "IngestedItem",
    "LiveCatalog",
    "ChatSession",
    "ChatTurn",
    "encode_new_item",
    "AlignmentTaskBuilder",
    "AlignmentTaskConfig",
    "ALL_TASKS",
    "EXTENSION_TASKS",
    "SemanticIndexerConfig",
    "build_semantic_index_set",
    "build_vanilla_index_set",
    "build_random_index_set",
]
