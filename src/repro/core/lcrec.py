"""LC-Rec: end-to-end orchestration of indexing, tuning and inference.

The :class:`LCRec` model reproduces the paper's pipeline:

1. Build a tokenizer/vocabulary over the item corpus and pretrain the tiny
   LLaMA so token embeddings carry language semantics (substitute for the
   pretrained LLaMA-7B checkpoint).
2. Encode each item's title+description, train the RQ-VAE with uniform
   semantic mapping, and obtain unique 4-level item indices.
3. Register index tokens as OOV vocabulary and extend the LM's embedding
   table and output head.
4. Instruction-tune on the alignment-task mixture (SEQ/MUT/ASY/ITE/PER).
5. Recommend by trie-constrained beam search over the entire item set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data import IntentionGenerator, SequentialDataset
from ..data.intentions import intention_template_texts
from ..llm import (
    InstructionTuner,
    LMConfig,
    PretrainConfig,
    TinyLlama,
    TuningConfig,
    encode_texts,
    greedy_generate,
    pretrain_lm,
    sequence_logprob,
)
from ..llm.instruction import prompt_ids
from ..quantization import IndexTrie, ItemIndexSet, RQVAE
from ..text import WordTokenizer
from ..utils.logging import get_logger
from ..utils.rng import SeedSequenceFactory
from . import templates as T
from .indexer import (
    SemanticIndexerConfig,
    build_random_index_set,
    build_semantic_index_set,
    build_vanilla_index_set,
)
from .tasks import AlignmentTaskBuilder, AlignmentTaskConfig

__all__ = ["LCRecConfig", "LCRec"]

logger = get_logger(__name__)


@dataclass
class LCRecConfig:
    """Every knob of the LC-Rec pipeline."""

    lm: LMConfig = field(default_factory=LMConfig)
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    indexer: SemanticIndexerConfig = field(default_factory=SemanticIndexerConfig)
    tasks: AlignmentTaskConfig = field(default_factory=AlignmentTaskConfig)
    tuning: TuningConfig = field(default_factory=TuningConfig)
    index_source: str = "semantic"  # semantic | vanilla | random
    beam_size: int = 20
    seed: int = 0

    def validate(self) -> None:
        if self.index_source not in ("semantic", "vanilla", "random"):
            raise ValueError(f"unknown index_source {self.index_source!r}")


class LCRec:
    """The LC-Rec recommender.

    Typical use::

        model = LCRec(dataset, LCRecConfig())
        model.build()
        items = model.recommend(history, top_k=10)
    """

    def __init__(self, dataset: SequentialDataset, config: LCRecConfig):
        config.validate()
        self.dataset = dataset
        self.config = config
        self._seeds = SeedSequenceFactory(config.seed)
        # Populated by build():
        self.tokenizer: WordTokenizer | None = None
        self.lm: TinyLlama | None = None
        self.index_set: ItemIndexSet | None = None
        self.trie: IndexTrie | None = None
        self.rqvae: RQVAE | None = None
        self.item_embeddings: np.ndarray | None = None
        self.intention_generator: IntentionGenerator | None = None
        self.task_builder: AlignmentTaskBuilder | None = None
        self.tuning_losses: list[float] = []
        self.pretrain_losses: list[float] = []
        self._pretrained_state: dict[str, np.ndarray] | None = None
        self._pretrained_config: LMConfig | None = None
        self._inference_engine = None  # lazily built LCRecEngine

    # ------------------------------------------------------------------
    # Build stages
    # ------------------------------------------------------------------
    def build_vocabulary(self) -> None:
        corpus = self.dataset.catalog.texts()
        corpus += T.all_template_texts()
        corpus += intention_template_texts()
        corpus += ["answer :"]
        vocab = WordTokenizer.build_vocab(corpus)
        self.tokenizer = WordTokenizer(vocab)

    def build_language_model(self) -> None:
        lm_config = self.config.lm
        lm_config.vocab_size = len(self.tokenizer.vocab)
        lm_config.seed = self._seeds.child_seed("lm") % (2**31)
        self.lm = TinyLlama(lm_config)
        corpus = self.dataset.catalog.texts()
        self.pretrain_losses = pretrain_lm(self.lm, self.tokenizer, corpus, self.config.pretrain)
        # Snapshot the language-only model: the Table V "LLaMA" comparator
        # (an LLM that has seen the item texts but no collaborative signal).
        import dataclasses

        self._pretrained_state = self.lm.state_dict()
        self._pretrained_config = dataclasses.replace(lm_config)

    def build_item_embeddings(self) -> None:
        self.item_embeddings = encode_texts(
            self.lm, self.tokenizer, self.dataset.catalog.texts()
        )

    def build_indices(self) -> None:
        source = self.config.index_source
        num_items = len(self.dataset.catalog)
        if source == "semantic":
            self.build_item_embeddings()
            indexer_config = self.config.indexer
            indexer_config.rqvae.input_dim = self.item_embeddings.shape[1]
            self.index_set, self.rqvae, _ = build_semantic_index_set(
                self.item_embeddings, indexer_config
            )
        elif source == "vanilla":
            self.index_set = build_vanilla_index_set(num_items)
        else:  # random
            rq = self.config.indexer.rqvae
            self.index_set = build_random_index_set(
                num_items, rq.num_levels, rq.codebook_size,
                self._seeds.rng("random-indices"),
            )
        self.index_set.register(self.tokenizer)
        extra = len(self.tokenizer.vocab) - self.lm.vocab_size
        self.lm.extend_vocab(extra, rng=self._seeds.rng("vocab-extend"))
        self.trie = self.index_set.build_trie(self.tokenizer)

    def build_task_builder(self) -> None:
        self.intention_generator = IntentionGenerator(
            self.dataset.catalog, self._seeds.rng("intentions")
        )
        self.task_builder = AlignmentTaskBuilder(
            dataset=self.dataset,
            index_set=self.index_set,
            intention_generator=self.intention_generator,
            config=self.config.tasks,
        )

    def tune(self) -> None:
        tuner = InstructionTuner(self.lm, self.tokenizer, self.config.tuning)
        self.tuning_losses = tuner.tune(self.task_builder.epoch_examples)

    def build(self) -> "LCRec":
        """Run the full pipeline; returns self for chaining."""
        logger.info("LC-Rec build on %s: vocabulary", self.dataset.name)
        self.build_vocabulary()
        logger.info("LC-Rec build: LM pretraining")
        self.build_language_model()
        logger.info("LC-Rec build: indexing (%s)", self.config.index_source)
        self.build_indices()
        self.build_task_builder()
        logger.info("LC-Rec build: alignment tuning")
        self.tune()
        return self

    def _require_built(self) -> None:
        if self.lm is None or self.trie is None:
            raise RuntimeError("call build() before inference")

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def seq_instruction(self, history: list[int], template_id: int = 0) -> str:
        """Render a sequential-prediction instruction for ``history``."""
        history = history[-self.config.tasks.max_history:]
        history_text = " , ".join(self.index_set.index_text(i) for i in history)
        return T.SEQ_TEMPLATES[template_id].format(history=history_text)

    def encode_instruction(self, instruction: str) -> list[int]:
        """Inference-side prompt token ids for a rendered instruction."""
        self._require_built()
        return prompt_ids(self.tokenizer, instruction, max_len=self.config.tuning.max_len)

    def recommend(self, history: list[int], top_k: int = 10, template_id: int = 0) -> list[int]:
        """Full-ranking next-item recommendation via constrained beam search."""
        self._require_built()
        instruction = self.seq_instruction(history, template_id)
        return self.recommend_from_instruction(instruction, top_k=top_k)

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10, template_id: int = 0
    ) -> list[list[int]]:
        """Batched :meth:`recommend`: all histories decoded together."""
        self._require_built()
        instructions = [self.seq_instruction(list(h), template_id) for h in histories]
        return self.recommend_many_from_instructions(instructions, top_k=top_k)

    def recommend_from_instruction(self, instruction: str, top_k: int = 10) -> list[int]:
        """Generate item recommendations for an arbitrary instruction."""
        return self.recommend_many_from_instructions([instruction], top_k=top_k)[0]

    def recommend_many_from_instructions(
        self, instructions: Sequence[str], top_k: int = 10
    ) -> list[list[int]]:
        """Batched constrained decoding of arbitrary instructions.

        All prompts run through the :class:`repro.serving.LCRecEngine`
        adapter in one ``B`` × ``K``-beam decode; rankings match
        per-request decoding.
        """
        self._require_built()
        prompts = [self.encode_instruction(i) for i in instructions]
        engine = self._inference_engine
        if engine is None or engine.lm is not self.lm or engine.trie is not self.trie:
            # One cache-less engine for the whole model: the oracle decode
            # path (no prefix cache, no scheduling) the serving parity
            # suites compare against.  Rebuilt whenever a build stage has
            # replaced the language model or the trie, so a re-built model
            # never serves stale weights.
            self._inference_engine = self.engine(prefix_cache=None)
        return self._inference_engine.rank_prompts(prompts, top_k=top_k)

    def engine(self, prefix_cache=True):
        """A :class:`repro.serving.LCRecEngine` adapter over this model.

        The engine is what the serving stack (micro-batcher, deadline
        loop, continuous scheduler) drives; ``prefix_cache`` is forwarded
        to its constructor (``True`` builds a fresh cache).
        """
        from ..serving import LCRecEngine

        return LCRecEngine(self, prefix_cache=prefix_cache)

    def service(self, batcher=None, **kwargs):
        """A :class:`repro.serving.RecommendationService` over this model.

        Builds an :class:`repro.serving.LCRecEngine` adapter (taking the
        ``prefix_cache`` keyword, default on) and forwards the remaining
        keyword arguments (``deadline_ms``, ``mode``) to the service
        constructor; call ``.start()`` on the result (or use it as a
        context manager) for async serving.
        """
        from ..serving import RecommendationService

        engine = self.engine(prefix_cache=kwargs.pop("prefix_cache", True))
        return RecommendationService(engine, batcher=batcher, **kwargs)

    def live_catalog(self, retrieval: bool = True, knn_config=None,
                     recluster_every: int = 64):
        """A :class:`repro.core.LiveCatalog` over this model's built catalog.

        Version 0 is the build-time trie/index set; ``catalog.ingest``
        then publishes new versions online.  Attach the result to a
        serving engine (:meth:`repro.serving.TrieDecoderEngine.attach_catalog`)
        so new prefills pick up swaps while in-flight decodes stay pinned.
        """
        from .catalog import LiveCatalog

        return LiveCatalog.from_lcrec(
            self, retrieval=retrieval, knn_config=knn_config,
            recluster_every=recluster_every,
        )

    def intention_instruction(self, intention_text: str, template_id: int = 0) -> str:
        return T.ITE_SEARCH_TEMPLATES[template_id].format(intention=intention_text)

    def recommend_for_intention(self, intention_text: str, top_k: int = 10) -> list[int]:
        """Item retrieval from a natural-language intention (Fig. 3 task)."""
        return self.recommend_from_instruction(
            self.intention_instruction(intention_text), top_k=top_k
        )

    def recommend_for_intentions(
        self, intention_texts: Sequence[str], top_k: int = 10
    ) -> list[list[int]]:
        """Batched intention retrieval: one decode for all queries."""
        instructions = [self.intention_instruction(text) for text in intention_texts]
        return self.recommend_many_from_instructions(instructions, top_k=top_k)

    def generate_text(self, instruction: str, max_new_tokens: int = 24) -> str:
        """Free-text generation (titles/descriptions, Fig. 5 case study)."""
        self._require_built()
        ids = prompt_ids(self.tokenizer, instruction, max_len=self.config.tuning.max_len)
        generated = greedy_generate(
            self.lm, ids, max_new_tokens, eos_id=self.tokenizer.vocab.eos_id
        )
        return self.tokenizer.decode(generated)

    def response_logprob(self, instruction: str, response: str) -> float:
        """Length-normalised response log likelihood (Table V scoring)."""
        self._require_built()
        ids = prompt_ids(self.tokenizer, instruction, max_len=self.config.tuning.max_len)
        continuation = self.tokenizer.encode(response)
        if not continuation:
            raise ValueError("empty response")
        return sequence_logprob(self.lm, ids, continuation)

    def pretrained_lm(self) -> TinyLlama:
        """A fresh copy of the LM as it was *before* alignment tuning.

        This is the pure language-semantics comparator ("LLaMA" in
        Table V): it has been pretrained on item texts but has never seen
        item indices or any collaborative signal.
        """
        if self._pretrained_state is None:
            raise RuntimeError("build_language_model() has not run")
        model = TinyLlama(self._pretrained_config)
        model.load_state_dict(self._pretrained_state)
        model.eval()
        return model

    # ------------------------------------------------------------------
    # Introspection (Fig. 4)
    # ------------------------------------------------------------------
    def token_embedding_groups(self) -> dict[str, np.ndarray]:
        """Embedding matrices for index tokens vs item-text tokens."""
        self._require_built()
        vocab = self.tokenizer.vocab
        weights = self.lm.tok_embeddings.weight.data
        index_ids = list(range(vocab.base_size, len(vocab)))
        text_token_ids: set[int] = set()
        for text in self.dataset.catalog.texts():
            text_token_ids.update(self.tokenizer.encode(text))
        text_ids = sorted(text_token_ids - set(index_ids))
        return {
            "item_indices": weights[index_ids],
            "item_texts": weights[text_ids],
        }
