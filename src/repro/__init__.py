"""LC-Rec reproduction: integrating collaborative semantics into LLMs.

This package reproduces "Adapting Large Language Models by Integrating
Collaborative Semantics for Recommendation" (Zheng et al., ICDE 2024) from
scratch on a numpy substrate:

* :mod:`repro.tensor` — reverse-mode autodiff engine and nn layers.
* :mod:`repro.text` — tokenizer / vocabulary with OOV index-token extension.
* :mod:`repro.data` — synthetic Amazon-review-like datasets and preprocessing.
* :mod:`repro.llm` — tiny LLaMA-style LM, generation and instruction tuning.
* :mod:`repro.quantization` — RQ-VAE with uniform semantic mapping (Sinkhorn).
* :mod:`repro.core` — the LC-Rec model: indexing + alignment tuning + ranking.
* :mod:`repro.baselines` — Caser, HGN, GRU4Rec, BERT4Rec, SASRec, FMLP-Rec,
  FDSA, S3-Rec, P5-CID, TIGER, DSSM.
* :mod:`repro.eval` — full-ranking HR/NDCG evaluation protocols.
* :mod:`repro.analysis` — PCA visualisation and index-semantics case studies.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
