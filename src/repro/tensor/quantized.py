"""Emulated low-precision GEMM kernels for the serving decode hot path.

The decode-time GEMMs this repo cares about — the gathered output-head
matmul and the fused QKV projection — are weight-stationary: one weight
matrix multiplies a small, ever-changing activation batch.  That is the
textbook quantization target, and because we own the tensor backend the
whole scheme fits in two kernels:

* **fp16** — weights and activations are rounded through IEEE half
  precision, then the GEMM accumulates in float32.  The rounded weight is
  *stored* as float32 (``fp16_weight``) so the matmul stays on the fast
  BLAS path; only the value grid is half precision.
* **int8** — symmetric per-output-channel absmax weight scales
  (``quantize_weight_int8``) and per-row dynamic absmax activation
  scales.  The integer GEMM is emulated in float arithmetic: every
  product is an integer in ``[-127^2, 127^2]`` and float32 adds integers
  exactly while the accumulator stays below ``2^24``, so for reduction
  depths up to :data:`INT8_EXACT_DEPTH` the emulation is bit-for-bit the
  integer result; deeper reductions fall back to float64 accumulation
  (still exact: ``2^53`` headroom).

Both paths change *values* (that is the point — smaller grids), so the
contract is tolerance + top-k overlap gates, never bit parity; see
``docs/performance.md``.  Quantized weights are derived arrays and must be
memoized behind :class:`repro.tensor.WeightMemo` exactly like the fp32
gathered head — callers key entries with :func:`precision_token` so one
memo serves every precision and staleness rules stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PRECISIONS",
    "INT8_EXACT_DEPTH",
    "Int8Weight",
    "fp16_activations",
    "fp16_weight",
    "int8_matmul",
    "precision_token",
    "quantize_weight_int8",
    "validate_precision",
]

PRECISIONS = ("fp32", "fp16", "int8")

_LEVELS = 127.0  # symmetric int8: values in [-127, 127], -128 unused

# Largest reduction depth whose emulated int8 accumulator stays exact in
# float32: every partial sum is an integer < 2^24 = 16777216, and float32
# represents all integers up to 2^24 exactly.
INT8_EXACT_DEPTH = int(2**24 // (_LEVELS * _LEVELS))

# Interned sentinel arrays, one per precision: WeightMemo keys entries by
# source-array identity, so including the precision's sentinel in the
# sources gives each precision its own slot in an existing memo (same
# grad-gating, same train()/eval() invalidation) without new attributes.
_PRECISION_TOKENS = {precision: np.empty(0, dtype=np.int8) for precision in PRECISIONS}


def validate_precision(precision: str) -> str:
    """``precision`` if it names a supported GEMM precision, else raise."""
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r}: expected one of {PRECISIONS}")
    return precision


def precision_token(precision: str) -> np.ndarray:
    """The interned identity-key sentinel for ``precision`` (see module doc)."""
    return _PRECISION_TOKENS[validate_precision(precision)]


def fp16_weight(weight: np.ndarray) -> np.ndarray:
    """``weight`` rounded through float16, stored float32 for BLAS speed."""
    return weight.astype(np.float16).astype(np.float32)


def fp16_activations(x: np.ndarray) -> np.ndarray:
    """Activations rounded through float16, stored float32."""
    return x.astype(np.float16).astype(np.float32)


@dataclass(frozen=True)
class Int8Weight:
    """A weight matrix quantized to symmetric per-output-channel int8.

    ``qweight`` holds the integer code points (float32-stored so the
    emulated GEMM runs on the BLAS path) and ``scales`` the per-output
    -channel dequantization factors: ``qweight * scales ≈ weight``.
    """

    qweight: np.ndarray  # (in_features, out_features) float32-stored integers
    scales: np.ndarray  # (out_features,) float32

    @property
    def out_features(self) -> int:
        return int(self.qweight.shape[1])


def quantize_weight_int8(weight: np.ndarray) -> Int8Weight:
    """Symmetric absmax int8 quantization, one scale per output channel.

    ``weight`` is ``(in_features, out_features)`` with output channels on
    the *columns* (the layout of ``Linear.weight`` and of gathered head
    slices).  All-zero channels get scale 1.0 so dequantization never
    divides by zero.
    """
    weight = np.asarray(weight, dtype=np.float32)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {weight.shape}")
    scales = np.abs(weight).max(axis=0) / _LEVELS
    scales = np.where(scales > 0, scales, 1.0).astype(np.float32)
    qweight = np.rint(weight / scales[None, :])
    np.clip(qweight, -_LEVELS, _LEVELS, out=qweight)
    return Int8Weight(qweight=np.ascontiguousarray(qweight, dtype=np.float32), scales=scales)


def int8_matmul(
    x: np.ndarray, weight: Int8Weight, out: np.ndarray | None = None
) -> np.ndarray:
    """``dequant(quant(x) @ weight.qweight)`` with dynamic activation scales.

    ``x`` is ``(rows, in_features)`` float32; each row gets its own absmax
    scale (all-zero rows scale 1.0).  Returns ``(rows, out_features)``
    float32, written into ``out`` when given.  The integer GEMM is exact
    (see module docstring), so two calls with identical inputs are
    bit-identical regardless of batch shape — a stronger guarantee than
    the fp32 path itself offers.
    """
    x = np.asarray(x, dtype=np.float32)
    row_scales = np.abs(x).max(axis=-1, keepdims=True) / _LEVELS
    row_scales = np.where(row_scales > 0, row_scales, 1.0)
    xq = np.rint(x / row_scales)
    np.clip(xq, -_LEVELS, _LEVELS, out=xq)
    if x.shape[-1] > INT8_EXACT_DEPTH:
        # float32 could round the integer accumulator; float64 cannot.
        acc = np.matmul(xq.astype(np.float64), weight.qweight.astype(np.float64))
        result = np.multiply(acc, row_scales, out=acc)
        result *= weight.scales[None, :]
        if out is not None:
            np.copyto(out, result.astype(np.float32))
            return out
        return result.astype(np.float32)
    result = np.matmul(xq, weight.qweight, out=out)
    result *= row_scales
    result *= weight.scales[None, :]
    return result
