"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import pathlib

import numpy as np

from .nn import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | pathlib.Path) -> pathlib.Path:
    """Write ``module.state_dict()`` to a compressed ``.npz`` file."""
    path = pathlib.Path(path)
    state = module.state_dict()
    np.savez_compressed(path, **state)
    # np.savez appends .npz when missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def load_module(module: Module, path: str | pathlib.Path) -> Module:
    """Load weights saved by :func:`save_module` into ``module``."""
    with np.load(pathlib.Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
