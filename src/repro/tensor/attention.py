"""Multi-head attention with rotary embeddings, KV cache and cross-attention.

This single block powers the tiny LLaMA language model (causal self-attention
with RoPE, paper backbone), the TIGER encoder-decoder (self + cross
attention) and the Transformer baselines (SASRec, BERT4Rec, FDSA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import functional as F
from .nn import Dropout, Linear, Module
from .quantized import (
    fp16_activations,
    fp16_weight,
    int8_matmul,
    precision_token,
    quantize_weight_int8,
    validate_precision,
)
from .tensor import Tensor, concat, is_grad_enabled
from .workspace import StepWorkspace, WeightMemo

__all__ = ["RotaryEmbedding", "KVCache", "BeamKVCache", "MultiHeadAttention", "causal_mask"]


def causal_mask(query_len: int, key_len: int, offset: int = 0) -> np.ndarray:
    """Boolean mask, True where attention is *disallowed* (future tokens).

    ``offset`` shifts the query positions, which is how cached incremental
    decoding keeps causality: query ``i`` lives at absolute position
    ``offset + i`` and may attend to keys ``<= offset + i``.
    """
    q_pos = np.arange(query_len)[:, None] + offset
    k_pos = np.arange(key_len)[None, :]
    return k_pos > q_pos


class RotaryEmbedding:
    """Rotary positional embedding (RoPE), as used by LLaMA.

    Precomputes cos/sin tables up to ``max_positions`` and applies the
    rotation with differentiable primitive ops.
    """

    def __init__(self, head_dim: int, max_positions: int = 4096, base: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError("RoPE head dimension must be even")
        self.head_dim = head_dim
        half = head_dim // 2
        inv_freq = 1.0 / (base ** (np.arange(half) / half))
        positions = np.arange(max_positions)
        angles = np.outer(positions, inv_freq)  # (P, half)
        self.cos = np.cos(angles).astype(np.float32)
        self.sin = np.sin(angles).astype(np.float32)

    def apply(self, x: Tensor, offset: int | np.ndarray = 0) -> Tensor:
        """Rotate ``x`` of shape ``(B, H, T, Dh)`` at positions ``offset..``.

        ``offset`` may be a per-row array of shape ``(B,)``, which batched
        decoding uses to keep left-padded rows at their *unpadded* positions
        (a padded row's offset is negative by its pad count; pad positions
        clamp to 0 — they are always masked out of attention anyway).  A
        2-D ``(B, T)`` array gives every token its *absolute* position
        directly: speculative decoding places all of a step's candidate
        tokens at the same next position, which no offset-plus-arange
        progression can express.
        """
        seq_len = x.shape[2]
        half = self.head_dim // 2
        if isinstance(offset, np.ndarray):
            if offset.ndim == 2:
                positions = np.maximum(offset.astype(np.int64), 0)  # (B, T)
            else:
                positions = np.maximum(
                    offset.astype(np.int64)[:, None] + np.arange(seq_len), 0
                )  # (B, T)
            cos = self.cos[positions][:, None, :, :]
            sin = self.sin[positions][:, None, :, :]
            x1 = x[..., :half]
            x2 = x[..., half:]
            rotated_first = x1 * cos - x2 * sin
            rotated_second = x2 * cos + x1 * sin
            return concat([rotated_first, rotated_second], axis=-1)
        cos = self.cos[offset : offset + seq_len][None, None, :, :]
        sin = self.sin[offset : offset + seq_len][None, None, :, :]
        x1 = x[..., :half]
        x2 = x[..., half:]
        rotated_first = x1 * cos - x2 * sin
        rotated_second = x2 * cos + x1 * sin
        return concat([rotated_first, rotated_second], axis=-1)


@dataclass
class KVCache:
    """Per-layer key/value cache for incremental decoding (inference only).

    ``keys``/``values`` are views of the used prefix of preallocated buffers
    that grow geometrically, so appending one decode step writes a single
    column instead of re-copying the whole cache (``np.concatenate`` made
    every step O(sequence length); batched serving made that the dominant
    cost).
    """

    keys: np.ndarray | None = None
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        self._buf_keys = self.keys
        self._buf_values = self.values

    def seed(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Resume decoding from precomputed K/V of shape ``(B, H, L, Dh)``.

        The cached-prefix serving path (:class:`repro.llm.PrefixKVCache`)
        seeds a fresh cache with the keys/values of an already-forwarded
        prompt prefix, so the model only runs the suffix tokens.  The
        arrays are adopted without copying: the first :meth:`append` sees a
        full buffer and reallocates, so seeded (possibly read-only, shared)
        arrays are never written in place.
        """
        if self.keys is not None:
            raise RuntimeError("seed() requires an empty cache")
        if keys.shape != values.shape:
            raise ValueError("keys and values must share a shape")
        self._buf_keys = keys
        self._buf_values = values
        self.keys = keys
        self.values = values

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        used = self.length
        new_len = used + k.shape[2]
        if (
            self._buf_keys is None
            or new_len > self._buf_keys.shape[2]
            or self._buf_keys.shape[0] != k.shape[0]
        ):
            # Modest headroom: beam reordering copies whole buffers, so a
            # 2x growth factor would double that traffic for the short
            # (num_levels-long) decodes this cache serves.
            capacity = new_len + max(16, new_len // 4)
            shape = (k.shape[0], k.shape[1], capacity, k.shape[3])
            new_keys = np.empty(shape, dtype=k.dtype)
            new_values = np.empty(shape, dtype=v.dtype)
            if used:
                new_keys[:, :, :used] = self.keys
                new_values[:, :, :used] = self.values
            self._buf_keys, self._buf_values = new_keys, new_values
        self._buf_keys[:, :, used:new_len] = k
        self._buf_values[:, :, used:new_len] = v
        self.keys = self._buf_keys[:, :, :new_len]
        self.values = self._buf_values[:, :, :new_len]
        return self.keys, self.values

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]

    @property
    def batch_size(self) -> int:
        return 0 if self.keys is None else self.keys.shape[0]

    def reorder(self, beam_indices: np.ndarray) -> None:
        """Reindex the batch dimension after a beam-search hypothesis shuffle.

        ``beam_indices`` may have any length, so a flattened ``B*K`` beam
        axis is supported directly: batched beam search reorders with global
        indices ``b * K + origin`` and may also grow or shrink the batch
        (continuous batching retires finished rows by reordering with the
        surviving subset).  Spare buffer capacity is preserved so the
        following ``append`` stays a single-column write.
        """
        if self.keys is None:
            return
        beam_indices = np.asarray(beam_indices)
        if len(beam_indices) == self.batch_size and np.array_equal(
            beam_indices, np.arange(self.batch_size)
        ):
            return  # identity shuffle: nothing moves
        used = self.length
        # Gather the *contiguous* buffers (a strided view would push numpy's
        # advanced indexing onto its slow generic path), keeping capacity.
        self._buf_keys = self._buf_keys[beam_indices]
        self._buf_values = self._buf_values[beam_indices]
        self.keys = self._buf_keys[:, :, :used]
        self.values = self._buf_values[:, :, :used]

    def take_columns(self, keep: np.ndarray) -> None:
        """Keep only the given key *columns* (in order), drop the rest.

        ``keep`` indexes the used columns.  Continuous batching uses this
        to trim prompt columns that became all-pad once their last real row
        retired: dropped columns were masked out of attention for every
        remaining row, so removing them changes no output while shrinking
        every later forward's key width.  The gathered buffers keep no
        spare capacity; a later ``append`` reallocates (prompt regions
        never append after prefill, so this costs nothing in practice).
        """
        if self.keys is None:
            return
        keep = np.asarray(keep, dtype=np.int64)
        self._buf_keys = np.ascontiguousarray(self.keys[:, :, keep, :])
        self._buf_values = np.ascontiguousarray(self.values[:, :, keep, :])
        self.keys = self._buf_keys
        self.values = self._buf_values

    def gather_columns(self, columns: np.ndarray) -> None:
        """Keep ``columns[i]`` (in order) for row ``i``, drop the rest.

        The per-row generalisation of :meth:`take_columns`: ``columns`` is
        ``(batch, n_keep)`` and each row keeps its own column subset.
        Speculative decoding uses this to discard the candidate K/V
        columns a beam did *not* select — every row scored the same
        speculative window but commits a different member of it.  The
        gathered buffers keep no spare capacity; the next ``append``
        reallocates (one realloc per speculative step, amortised by the
        forward it saves).
        """
        if self.keys is None:
            return
        columns = np.asarray(columns, dtype=np.int64)
        if columns.ndim != 2 or columns.shape[0] != self.batch_size:
            raise ValueError(
                f"columns must be (batch, n_keep) = ({self.batch_size}, *), "
                f"got shape {columns.shape}"
            )
        index = columns[:, None, :, None]
        self._buf_keys = np.ascontiguousarray(np.take_along_axis(self.keys, index, axis=2))
        self._buf_values = np.ascontiguousarray(
            np.take_along_axis(self.values, index, axis=2)
        )
        self.keys = self._buf_keys
        self.values = self._buf_values

    def join(
        self, other: "KVCache", pad_self: int = 0, pad_other: int = 0, other_rows: int = 0
    ) -> None:
        """Concatenate ``other``'s rows after this cache's on the batch axis.

        ``pad_self``/``pad_other`` zero key *columns* are prepended to the
        respective side so both reach one common width (``self.length +
        pad_self == other.length + pad_other``).  Prepended columns carry
        no information — callers must mask them out of attention for the
        corresponding rows, exactly like prompt left-padding.  An empty
        ``other`` instead contributes ``other_rows`` rows made entirely of
        zero columns (a freshly admitted request's share of an in-flight
        suffix region).  Spare capacity is allocated so following appends
        stay single-column writes.
        """
        if self.keys is None:
            raise RuntimeError("join requires a non-empty left cache")
        if other.keys is None and other_rows <= 0:
            raise ValueError("joining an empty cache requires other_rows")
        other_batch = other.batch_size if other.keys is not None else other_rows
        width = self.length + pad_self
        if other.length + pad_other != width:
            raise ValueError(
                f"padded widths disagree: {self.length}+{pad_self} != "
                f"{other.length}+{pad_other}"
            )
        rows = self.batch_size + other_batch
        capacity = width + max(16, width // 4)
        shape = (rows, self.keys.shape[1], capacity, self.keys.shape[3])
        new_keys = np.zeros(shape, dtype=self.keys.dtype)
        new_values = np.zeros(shape, dtype=self.values.dtype)
        new_keys[: self.batch_size, :, pad_self:width] = self.keys
        new_values[: self.batch_size, :, pad_self:width] = self.values
        if other.keys is not None:
            new_keys[self.batch_size :, :, pad_other:width] = other.keys
            new_values[self.batch_size :, :, pad_other:width] = other.values
        self._buf_keys, self._buf_values = new_keys, new_values
        self.keys = new_keys[:, :, :width]
        self.values = new_values[:, :, :width]


class BeamKVCache:
    """KV cache that shares the prompt prefix across ``K`` beams per request.

    Beam search over ``B`` requests × ``K`` beams reads the same prompt
    keys/values for every beam of a request; a flat ``(B*K, H, T, Dh)``
    cache stores (and re-shuffles, every level) ``K`` copies of them, which
    makes memory traffic — not matmuls — the decode bottleneck.  This cache
    keeps the prompt portion at ``B`` rows and only the post-``fan_out``
    suffix at ``B*K`` rows; attention combines the two blockwise (see
    :meth:`MultiHeadAttention.forward`).

    Beam reordering is legal because hypotheses never migrate between
    requests: flat index ``b*K + k`` always maps to prompt row ``b``, so
    ``reorder`` touches only the tiny suffix.
    """

    def __init__(self) -> None:
        self.prompt = KVCache()
        self.suffix = KVCache()
        self.beams = 1

    @property
    def fanned(self) -> bool:
        return self.beams > 1

    @property
    def length(self) -> int:
        return self.prompt.length + self.suffix.length

    @property
    def batch_size(self) -> int:
        return self.prompt.batch_size * self.beams

    def seed_prompt(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Resume from cached prompt-prefix K/V (``(B, H, L, Dh)``).

        Must run before any :meth:`append` or :meth:`fan_out`: the seeded
        columns become the leftmost prompt columns, and the remaining
        prompt tokens are appended behind them by the suffix forward pass.
        """
        if self.fanned:
            raise RuntimeError("seed_prompt must precede fan_out")
        self.prompt.seed(keys, values)

    def fan_out(self, beams: int) -> None:
        """Declare ``beams`` hypotheses per request.  No data is copied."""
        if beams < 1:
            raise ValueError("beams must be positive")
        if self.fanned:
            raise RuntimeError("cache is already fanned out")
        if self.suffix.keys is not None:
            raise RuntimeError("fan_out must precede suffix appends")
        self.beams = beams

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append to the prompt before :meth:`fan_out`, else to the suffix."""
        if not self.fanned:
            return self.prompt.append(k, v)
        return self.suffix.append(k, v)

    def reorder(self, beam_indices: np.ndarray) -> None:
        """Shuffle hypotheses (flat ``B*K`` indices, within-request only)."""
        if not self.fanned:
            self.prompt.reorder(beam_indices)
        else:
            self.suffix.reorder(beam_indices)

    def gather_columns(self, columns: np.ndarray) -> None:
        """Per-row column gather on the *append-target* region.

        ``columns`` indexes the suffix region once the cache is fanned
        out, else the prompt region (a width-1 decode appends its suffix
        tokens to the prompt cache) — mirroring :meth:`append`, because
        the columns being discarded are always ones a forward just
        appended (see :meth:`KVCache.gather_columns`).
        """
        if not self.fanned:
            self.prompt.gather_columns(columns)
        else:
            self.suffix.gather_columns(columns)

    def join(self, other: "BeamKVCache") -> tuple[int, int]:
        """Merge ``other``'s requests onto this cache's batch axis.

        The continuous-batching admission primitive: ``other`` holds freshly
        prefilled requests (fanned out to the same beam count, no suffix
        columns yet) and its rows are appended after this cache's.  Prompt
        regions of different widths are aligned by prepending zero columns
        to the narrower side; the incoming rows also receive one all-zero
        column per existing suffix column (decode steps that ran before they
        were admitted).  Returns ``(pad_self, pad_other)`` — the prompt
        columns prepended to the live rows / the incoming rows — so the
        caller can extend its pad-column masks; every prepended or zero
        column must be masked out of attention for the affected rows.
        """
        if not self.fanned or not other.fanned:
            raise RuntimeError("join requires both caches fanned out")
        if self.beams != other.beams:
            raise ValueError(f"beam width mismatch: {self.beams} != {other.beams}")
        if other.suffix.length:
            raise ValueError("incoming cache must not have suffix columns")
        if self.prompt.keys is None or other.prompt.keys is None:
            raise RuntimeError("join requires prefilled prompt regions")
        pad_self = max(0, other.prompt.length - self.prompt.length)
        pad_other = max(0, self.prompt.length - other.prompt.length)
        incoming_rows = other.prompt.batch_size
        self.prompt.join(other.prompt, pad_self, pad_other)
        if self.suffix.keys is not None:
            self.suffix.join(
                other.suffix, 0, self.suffix.length, other_rows=incoming_rows * self.beams
            )
        return pad_self, pad_other

    def select_requests(self, keep: np.ndarray) -> None:
        """Keep only the request rows in ``keep`` (in order), drop the rest.

        ``keep`` indexes the request axis; the matching flat ``B*K`` suffix
        rows are derived from it.  Retiring finished requests mid-decode
        this way shrinks every later forward and reorder to the live rows.
        """
        keep = np.asarray(keep, dtype=np.int64)
        self.prompt.reorder(keep)
        if self.suffix.keys is not None:
            flat = (keep[:, None] * self.beams + np.arange(self.beams)).reshape(-1)
            self.suffix.reorder(flat)


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Parameters
    ----------
    dim:
        Model dimension (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    rope:
        Optional :class:`RotaryEmbedding` applied to queries and keys (only
        sensible for self-attention).
    dropout:
        Attention-probability dropout rate.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rope: RotaryEmbedding | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.rope = rope
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.out_proj = Linear(dim, dim, bias=False, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        # Cleared on every train()/eval() transition by Module.train.  One
        # entry per precision (fp32 base + derived fp16/int8 variants).
        self._fused_qkv = WeightMemo(max_entries=4)

    def _fused_qkv_weight(self) -> np.ndarray:
        """Concatenated ``(dim, 3*dim)`` weight for a single QKV GEMM.

        Inference-only: one fused matmul replaces three per-projection BLAS
        calls on the decode hot path.  Staleness guards live in
        :class:`repro.tensor.WeightMemo`.
        """
        params = (self.q_proj.weight, self.k_proj.weight, self.v_proj.weight)
        sources = tuple(param.data for param in params)
        return self._fused_qkv.get(
            sources, params, lambda: np.concatenate(sources, axis=1)
        )

    def _fused_qkv_quantized(self, precision: str):
        """The fused QKV weight quantized to ``precision`` (memoized).

        Keyed into the same memo as the fp32 fusion via the precision's
        interned sentinel (see :func:`repro.tensor.precision_token`), so
        invalidation — grad presence, train()/eval(), in-place optimizer
        steps — is identical for every precision.
        """
        params = (self.q_proj.weight, self.k_proj.weight, self.v_proj.weight)
        sources = tuple(param.data for param in params) + (precision_token(precision),)
        if precision == "fp16":
            return self._fused_qkv.get(
                sources, params, lambda: fp16_weight(self._fused_qkv_weight())
            )
        return self._fused_qkv.get(
            sources, params, lambda: quantize_weight_int8(self._fused_qkv_weight())
        )

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(
        self,
        x: Tensor,
        context: Tensor | None = None,
        attn_mask: np.ndarray | None = None,
        cache: KVCache | None = None,
        rope_offset: int | np.ndarray | None = None,
        workspace: StepWorkspace | None = None,
        precision: str = "fp32",
    ) -> Tensor:
        """Attend from ``x`` to ``context`` (defaults to self-attention).

        ``attn_mask`` is a boolean array broadcastable to
        ``(batch, heads, q_len, k_len)``; True entries are masked out.
        When ``cache`` is given, newly computed keys/values are appended and
        attention spans the full cached sequence.  ``rope_offset`` overrides
        the RoPE position offset (default: the cache length); batched
        left-padded decoding passes a per-row ``(B,)`` array.  ``workspace``
        optionally provides reusable scratch buffers for the cached decode
        path (see :class:`repro.tensor.StepWorkspace`).  ``precision``
        selects the fused-QKV GEMM precision on the cached decode path
        (``"fp16"``/``"int8"`` quantize that projection only — see
        :mod:`repro.tensor.quantized`); the training path ignores it.
        """
        source = context if context is not None else x
        if cache is not None and context is None and not is_grad_enabled():
            # Cached self-attention decode: one fused QKV GEMM instead of
            # three projection matmuls, written into workspace scratch.
            x_data = x.data
            out_buf = (
                workspace.take("qkv", x_data.shape[:-1] + (3 * self.dim,))
                if workspace is not None
                else None
            )
            # Folded GEMM: collapse (B, T) so the projection is one BLAS
            # call regardless of batch shape (matches Tensor.__matmul__).
            flat_x = x_data.reshape(-1, x_data.shape[-1])
            flat_out = None if out_buf is None else out_buf.reshape(-1, 3 * self.dim)
            if precision == "fp32":
                qkv = np.matmul(flat_x, self._fused_qkv_weight(), out=flat_out)
            elif validate_precision(precision) == "fp16":
                qkv = np.matmul(
                    fp16_activations(flat_x), self._fused_qkv_quantized("fp16"), out=flat_out
                )
            else:
                qkv = int8_matmul(flat_x, self._fused_qkv_quantized("int8"), out=flat_out)
            qkv = qkv.reshape(x_data.shape[:-1] + (3 * self.dim,))
            q = self._split_heads(Tensor(qkv[..., : self.dim]))
            k = self._split_heads(Tensor(qkv[..., self.dim : 2 * self.dim]))
            v = self._split_heads(Tensor(qkv[..., 2 * self.dim :]))
        else:
            q = self._split_heads(self.q_proj(x))
            k = self._split_heads(self.k_proj(source))
            v = self._split_heads(self.v_proj(source))

        if rope_offset is None:
            rope_offset = cache.length if cache is not None else 0
        if self.rope is not None and context is None:
            q = self.rope.apply(q, offset=rope_offset)
            k = self.rope.apply(k, offset=rope_offset)

        if cache is not None:
            k_data, v_data = cache.append(k.data, v.data)
            if isinstance(cache, BeamKVCache) and cache.fanned:
                out = self._beam_cached_attention(q.data, cache, attn_mask, workspace)
                return self.out_proj(Tensor(out))
            k, v = Tensor(k_data), Tensor(v_data)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if attn_mask is not None:
            scores = F.masked_fill(scores, attn_mask, -1e9)
        probs = F.softmax(scores, axis=-1)
        probs = self.attn_dropout(probs)
        out = probs @ v
        return self.out_proj(self._merge_heads(out))

    def _beam_cached_attention(
        self,
        q: np.ndarray,
        cache: BeamKVCache,
        attn_mask: np.ndarray | None,
        workspace: StepWorkspace | None = None,
    ) -> np.ndarray:
        """Decode attention over a shared-prompt beam cache (``T >= 1``).

        ``q`` is ``(B*K, H, T, Dh)`` — the new token(s) per hypothesis, RoPE
        already applied; their keys/values are already in ``cache.suffix``.
        ``T`` is 1 on an ordinary decode step; the forced-token fast path
        flushes several pending trie levels in one combined forward, so any
        ``T`` is supported (queries carry the model's causal mask).  Prompt
        keys/values stay at ``B`` rows and are attended through broadcast
        matmuls per request instead of ``K`` duplicated copies; only the
        per-beam suffix lives on the flat ``B*K`` axis.  With a
        :class:`repro.tensor.StepWorkspace`, every score/output scratch
        array is reused across steps (zero step-scoped allocations at
        steady state).  Returns merged-head outputs ``(B*K, T, dim)``.
        """
        kp, vp = cache.prompt.keys, cache.prompt.values  # (B, H, Tp, Dh)
        ks, vs = cache.suffix.keys, cache.suffix.values  # (B*K, H, S, Dh)
        beams = cache.beams
        num_requests, heads, prompt_len, head_dim = kp.shape
        flat, _, q_len, _ = q.shape
        suffix_len = ks.shape[2]
        key_len = prompt_len + suffix_len
        scale = np.float32(1.0 / np.sqrt(head_dim))

        def scratch(name: str, shape: tuple[int, ...]) -> np.ndarray:
            if workspace is not None:
                return workspace.take(name, shape)
            return np.empty(shape, dtype=np.float32)

        # (B, H, K, T, Dh) view of the flat queries: the prompt matmul
        # broadcasts each request's K/V over the K (and T) axes.
        q5 = q.reshape(num_requests, beams, heads, q_len, head_dim).transpose(0, 2, 1, 3, 4)
        scores = scratch("attn_scores", (num_requests, heads, beams, q_len, key_len))
        np.matmul(q5, kp.transpose(0, 1, 3, 2)[:, :, None], out=scores[..., :prompt_len])
        ks5 = ks.reshape(num_requests, beams, heads, suffix_len, head_dim)
        np.matmul(q5, ks5.transpose(0, 2, 1, 4, 3), out=scores[..., prompt_len:])
        scores *= scale

        if attn_mask is not None and np.any(attn_mask):
            mask = np.asarray(attn_mask)
            if mask.ndim == 2:
                # (T, key_len) causal mask shared by every hypothesis.
                mask = mask[None, None, None, :, :]
            elif mask.shape[0] == flat:
                # (B*K, 1, T, key_len) -> (B, 1, K, T, key_len)
                mask = mask.reshape(num_requests, beams, 1, q_len, key_len).transpose(
                    0, 2, 1, 3, 4
                )
            else:
                raise ValueError(f"unsupported beam attention mask shape {mask.shape}")
            np.copyto(scores, np.float32(-1e9), where=mask)

        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        probs = self.attn_dropout(Tensor(scores)).data

        ctx = scratch("attn_ctx", (num_requests, heads, beams, q_len, head_dim))
        np.matmul(probs[..., :prompt_len], vp[:, :, None], out=ctx)
        ctx_s = scratch("attn_ctx_suffix", (num_requests, heads, beams, q_len, head_dim))
        vs5 = vs.reshape(num_requests, beams, heads, suffix_len, head_dim)
        np.matmul(probs[..., prompt_len:], vs5.transpose(0, 2, 1, 3, 4), out=ctx_s)
        ctx += ctx_s
        merged = scratch("attn_merged", (flat, q_len, self.dim))
        np.copyto(
            merged.reshape(num_requests, beams, q_len, heads, head_dim),
            ctx.transpose(0, 2, 3, 1, 4),
        )
        return merged
