"""Multi-head attention with rotary embeddings, KV cache and cross-attention.

This single block powers the tiny LLaMA language model (causal self-attention
with RoPE, paper backbone), the TIGER encoder-decoder (self + cross
attention) and the Transformer baselines (SASRec, BERT4Rec, FDSA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import functional as F
from .nn import Dropout, Linear, Module
from .tensor import Tensor, concat

__all__ = ["RotaryEmbedding", "KVCache", "MultiHeadAttention", "causal_mask"]


def causal_mask(query_len: int, key_len: int, offset: int = 0) -> np.ndarray:
    """Boolean mask, True where attention is *disallowed* (future tokens).

    ``offset`` shifts the query positions, which is how cached incremental
    decoding keeps causality: query ``i`` lives at absolute position
    ``offset + i`` and may attend to keys ``<= offset + i``.
    """
    q_pos = np.arange(query_len)[:, None] + offset
    k_pos = np.arange(key_len)[None, :]
    return k_pos > q_pos


class RotaryEmbedding:
    """Rotary positional embedding (RoPE), as used by LLaMA.

    Precomputes cos/sin tables up to ``max_positions`` and applies the
    rotation with differentiable primitive ops.
    """

    def __init__(self, head_dim: int, max_positions: int = 4096,
                 base: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError("RoPE head dimension must be even")
        self.head_dim = head_dim
        half = head_dim // 2
        inv_freq = 1.0 / (base ** (np.arange(half) / half))
        positions = np.arange(max_positions)
        angles = np.outer(positions, inv_freq)  # (P, half)
        self.cos = np.cos(angles).astype(np.float32)
        self.sin = np.sin(angles).astype(np.float32)

    def apply(self, x: Tensor, offset: int = 0) -> Tensor:
        """Rotate ``x`` of shape ``(B, H, T, Dh)`` at positions ``offset..``."""
        seq_len = x.shape[2]
        half = self.head_dim // 2
        cos = self.cos[offset:offset + seq_len][None, None, :, :]
        sin = self.sin[offset:offset + seq_len][None, None, :, :]
        x1 = x[..., :half]
        x2 = x[..., half:]
        rotated_first = x1 * cos - x2 * sin
        rotated_second = x2 * cos + x1 * sin
        return concat([rotated_first, rotated_second], axis=-1)


@dataclass
class KVCache:
    """Per-layer key/value cache for incremental decoding (inference only)."""

    keys: np.ndarray | None = None
    values: np.ndarray | None = None

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.keys is None:
            self.keys, self.values = k, v
        else:
            self.keys = np.concatenate([self.keys, k], axis=2)
            self.values = np.concatenate([self.values, v], axis=2)
        return self.keys, self.values

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]

    def reorder(self, beam_indices: np.ndarray) -> None:
        """Reindex the batch dimension after a beam-search hypothesis shuffle."""
        if self.keys is not None:
            self.keys = self.keys[beam_indices]
            self.values = self.values[beam_indices]


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Parameters
    ----------
    dim:
        Model dimension (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    rope:
        Optional :class:`RotaryEmbedding` applied to queries and keys (only
        sensible for self-attention).
    dropout:
        Attention-probability dropout rate.
    """

    def __init__(self, dim: int, num_heads: int, rope: RotaryEmbedding | None = None,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.rope = rope
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.out_proj = Linear(dim, dim, bias=False, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(
        self,
        x: Tensor,
        context: Tensor | None = None,
        attn_mask: np.ndarray | None = None,
        cache: KVCache | None = None,
    ) -> Tensor:
        """Attend from ``x`` to ``context`` (defaults to self-attention).

        ``attn_mask`` is a boolean array broadcastable to
        ``(batch, heads, q_len, k_len)``; True entries are masked out.
        When ``cache`` is given, newly computed keys/values are appended and
        attention spans the full cached sequence.
        """
        source = context if context is not None else x
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(source))
        v = self._split_heads(self.v_proj(source))

        offset = cache.length if cache is not None else 0
        if self.rope is not None and context is None:
            q = self.rope.apply(q, offset=offset)
            k = self.rope.apply(k, offset=offset)

        if cache is not None:
            k_data, v_data = cache.append(k.data, v.data)
            k, v = Tensor(k_data), Tensor(v_data)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if attn_mask is not None:
            scores = F.masked_fill(scores, attn_mask, -1e9)
        probs = F.softmax(scores, axis=-1)
        probs = self.attn_dropout(probs)
        out = probs @ v
        return self.out_proj(self._merge_heads(out))
