"""Fused neural-network operations for the autodiff engine.

These functions create single tape nodes with hand-derived backward rules,
which is substantially faster than composing them from primitive ops.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "rms_norm",
    "dropout",
    "embedding",
    "masked_fill",
    "logsumexp",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g):
        inner = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - inner),)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    probs = np.exp(out_data)

    def backward(g):
        return (g - probs * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable ``log(sum(exp(x)))`` reduction."""
    x = as_tensor(x)
    maxes = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - maxes)
    total = exp.sum(axis=axis, keepdims=True)
    out_data = np.log(total) + maxes
    softmax_vals = exp / total
    if not keepdims:
        out_data = np.squeeze(out_data, axis=axis)

    def backward(g):
        g_arr = g if keepdims else np.expand_dims(g, axis)
        return (g_arr * softmax_vals,)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        ``(..., num_classes)`` unnormalised scores.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute no loss (label masking, used
        to train on response tokens only during instruction tuning).
    """
    logits = as_tensor(logits)
    num_classes = logits.shape[-1]
    flat_logits = logits.data.reshape(-1, num_classes)
    flat_targets = np.asarray(targets).reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    n_valid = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z

    safe_targets = np.where(valid, flat_targets, 0)
    picked = log_probs[np.arange(flat_targets.size), safe_targets]
    loss = -(picked * valid).sum() / n_valid

    probs = np.exp(log_probs)
    logits_shape = logits.shape

    def backward(g):
        grad = probs.copy()
        grad[np.arange(flat_targets.size), safe_targets] -= 1.0
        grad *= valid[:, None]
        grad *= float(g) / n_valid
        return (grad.reshape(logits_shape),)

    return Tensor._make(np.float32(loss), (logits,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias = as_tensor(bias)
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv_std
    out_data = weight.data * x_hat + bias.data
    feature_axes = tuple(range(x.ndim - 1))

    def backward(g):
        g_hat = g * weight.data
        gx = inv_std * (
            g_hat
            - g_hat.mean(axis=-1, keepdims=True)
            - x_hat * (g_hat * x_hat).mean(axis=-1, keepdims=True)
        )
        g_weight = (g * x_hat).sum(axis=feature_axes)
        g_bias = g.sum(axis=feature_axes)
        return (gx, g_weight, g_bias)

    return Tensor._make(out_data, (x, weight, bias), backward)


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square normalisation (the LLaMA normalisation layer)."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    mean_sq = (x.data * x.data).mean(axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(mean_sq + eps)
    normed = x.data * inv_rms
    out_data = weight.data * normed
    dim = x.shape[-1]
    feature_axes = tuple(range(x.ndim - 1))

    def backward(g):
        g_normed = g * weight.data
        # d/dx [x * inv_rms]: inv_rms * g - x * <g, x> * inv_rms^3 / dim
        inner = (g_normed * x.data).sum(axis=-1, keepdims=True)
        gx = g_normed * inv_rms - x.data * inner * (inv_rms**3) / dim
        g_weight = (g * normed).sum(axis=feature_axes)
        return (gx, g_weight)

    return Tensor._make(out_data, (x, weight), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep

    def backward(g):
        return (g * mask,)

    return Tensor._make(x.data * mask, (x,), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward."""
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    out_data = weight.data[idx]
    vocab_shape = weight.shape

    def backward(g):
        grad = np.zeros(vocab_shape, dtype=np.float32)
        np.add.at(grad, idx, g)
        return (grad,)

    return Tensor._make(out_data, (weight,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is True by ``value`` (constant)."""
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.float32(value), x.data)

    def backward(g):
        return (np.where(mask, 0.0, g),)

    return Tensor._make(out_data, (x,), backward)
