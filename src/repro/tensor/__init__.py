"""Numpy autodiff engine: tensors, layers, optimisers and schedules."""

from . import functional
from .attention import BeamKVCache, KVCache, MultiHeadAttention, RotaryEmbedding, causal_mask
from .init import kaiming_uniform, normal_, uniform_, xavier_uniform
from .nn import (
    MLP,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    RMSNorm,
    Sequential,
)
from .optim import Adam, AdamW, SGD, clip_grad_norm
from .quantized import (
    INT8_EXACT_DEPTH,
    PRECISIONS,
    Int8Weight,
    fp16_activations,
    fp16_weight,
    int8_matmul,
    precision_token,
    quantize_weight_int8,
    validate_precision,
)
from .recurrent import GRU, GRUCell
from .sched import ConstantSchedule, CosineWarmup, LinearWarmup
from .serialize import load_module, save_module
from .tensor import (
    Parameter,
    Tensor,
    as_tensor,
    concat,
    is_grad_enabled,
    no_grad,
    stack,
    where,
)
from .workspace import StepWorkspace, WeightMemo

__all__ = [
    "Tensor",
    "Parameter",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "RMSNorm",
    "Dropout",
    "MLP",
    "MultiHeadAttention",
    "RotaryEmbedding",
    "KVCache",
    "BeamKVCache",
    "StepWorkspace",
    "WeightMemo",
    "causal_mask",
    "INT8_EXACT_DEPTH",
    "PRECISIONS",
    "Int8Weight",
    "fp16_activations",
    "fp16_weight",
    "int8_matmul",
    "precision_token",
    "quantize_weight_int8",
    "validate_precision",
    "GRU",
    "GRUCell",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "ConstantSchedule",
    "LinearWarmup",
    "CosineWarmup",
    "save_module",
    "load_module",
    "kaiming_uniform",
    "xavier_uniform",
    "normal_",
    "uniform_",
]
