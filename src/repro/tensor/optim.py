"""Optimisers and gradient utilities.

The paper trains the RQ-VAE and the LLM with AdamW (Sec. IV-A4); the
baselines use Adam.  Both are implemented here, together with global-norm
gradient clipping used by the instruction-tuning trainer.
"""

from __future__ import annotations

import numpy as np

from .tensor import Parameter

__all__ = ["SGD", "Adam", "AdamW", "clip_grad_norm"]


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(params, lr, betas, eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        if self.weight_decay > 0:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        super().step()


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
