"""Minimal neural-network module system on top of the autodiff engine.

Mirrors the familiar ``torch.nn`` layout: a :class:`Module` owns
:class:`~repro.tensor.tensor.Parameter` leaves and child modules, exposes
``parameters()`` / ``state_dict()`` and a train/eval switch that controls
dropout.  All models in this repository (the tiny LLaMA, the RQ-VAE and the
eleven baselines) are built from these blocks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from .init import kaiming_uniform, normal_, uniform_
from .tensor import Parameter, Tensor
from .workspace import WeightMemo

__all__ = [
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "RMSNorm",
    "Dropout",
    "MLP",
]


class Module:
    """Base class providing parameter registration and (de)serialisation."""

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- attribute-based registration ----------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(param.size for param in self.parameters())

    # -- train / eval ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
            # Mode transitions bracket every training loop in this repo,
            # so they are the invalidation point for caches derived from
            # weights: the optimizers update parameter arrays in place,
            # which identity checks alone cannot see (see WeightMemo).
            for value in vars(module).values():
                if isinstance(value, WeightMemo):
                    value.clear()
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- serialisation ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.copy()

    # -- call protocol -----------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Linear(Module):
    """Affine map ``y = x @ W + b`` with Kaiming-uniform initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform(rng, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        std: float = 0.02,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(normal_(rng, (num_embeddings, embedding_dim), std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, np.asarray(indices))

    def extend(self, extra_rows: int, rng: np.random.Generator, std: float = 0.02) -> None:
        """Grow the table by ``extra_rows`` freshly initialised rows.

        This mirrors how LC-Rec appends item-index tokens to the LLaMA
        tokenizer as out-of-vocabulary tokens (paper Sec. IV-A4).
        """
        new_rows = normal_(rng, (extra_rows, self.embedding_dim), std=std)
        self.weight.data = np.concatenate([self.weight.data, new_rows], axis=0)
        self.weight.grad = None
        self.num_embeddings += extra_rows


class LayerNorm(Module):
    """Layer normalisation with learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class RMSNorm(Module):
    """Root-mean-square norm (LLaMA-style, no bias/centering)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.rms_norm(x, self.weight, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by the module-level training flag."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, self.training)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations.

    Used as the encoder/decoder of the RQ-VAE (paper Sec. IV-A4: "both the
    encoder and decoder of RQ-VAE are implemented as MLPs with ReLU").
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator | None = None,
        final_activation: bool = False,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.dims = list(dims)
        self.final_activation = final_activation
        self.linears = ModuleList(
            [Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)]
        )

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, linear in enumerate(self.linears):
            x = linear(x)
            if i < last or self.final_activation:
                x = x.relu()
        return x


def uniform_init(
    rng: np.random.Generator, shape: tuple[int, ...], low: float, high: float
) -> np.ndarray:
    """Convenience re-export used by a few baseline models."""
    return uniform_(rng, shape, low, high)
