"""Weight initialisers (all take an explicit ``np.random.Generator``)."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal_", "uniform_"]


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """He/Kaiming uniform init for a ``(fan_in, fan_out)`` weight matrix."""
    fan_in = shape[0]
    bound = float(np.sqrt(1.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02, mean: float = 0.0
) -> np.ndarray:
    """Gaussian init (the transformer-embedding default)."""
    return (rng.standard_normal(shape) * std + mean).astype(np.float32)


def uniform_(
    rng: np.random.Generator, shape: tuple[int, ...], low: float, high: float
) -> np.ndarray:
    """Uniform init on ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(np.float32)
