"""Learning-rate schedules.

The paper fine-tunes with "a cosine scheduler with warmup" (Sec. IV-A4);
:class:`CosineWarmup` reproduces that schedule.
"""

from __future__ import annotations

import math

__all__ = ["ConstantSchedule", "LinearWarmup", "CosineWarmup"]


class Schedule:
    """Base class mapping a step index to a learning-rate value."""

    def __init__(self, base_lr: float):
        self.base_lr = float(base_lr)

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr


class ConstantSchedule(Schedule):
    """A flat learning rate."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class LinearWarmup(Schedule):
    """Linear warmup to ``base_lr`` then constant."""

    def __init__(self, base_lr: float, warmup_steps: int):
        super().__init__(base_lr)
        self.warmup_steps = max(int(warmup_steps), 1)

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        return self.base_lr


class CosineWarmup(Schedule):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0):
        super().__init__(base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(int(warmup_steps), 0)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = max(self.total_steps - self.warmup_steps, 1)
        progress = min(max(step - self.warmup_steps, 0) / span, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
