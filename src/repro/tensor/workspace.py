"""Preallocated scratch buffers for the decode hot path.

A batched decode step runs the same handful of array shapes every
iteration — the fused QKV projection, the beam-attention score block, the
candidate-logit GEMM — and allocating them anew each step makes memory
churn, not math, a visible cost at serving batch sizes.
:class:`StepWorkspace` keeps one buffer per ``(name, shape, dtype)`` and
hands it back on every request, so a steady-state decode performs zero
step-scoped allocations: the first step of a decode sizes each buffer and
later steps reuse it (a shape that legitimately changes — the attention
key width grows by one column per trie level — simply materialises one
buffer per distinct shape, bounded by the trie depth).

Buffers are returned *uninitialised* (possibly holding a previous step's
values): callers must fully overwrite them, typically via ``out=`` on
``np.matmul`` or whole-array assignment.  A workspace belongs to exactly
one decode state and is not thread-safe; the serving layer's decode lock
already guarantees single-threaded stepping.  ``clear()`` drops every
buffer — decode states call it when their row count changes (retire/join),
which is what keeps retired requests from pinning peak-width scratch
memory.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["StepWorkspace", "WeightMemo"]


class StepWorkspace:
    """Shape-keyed scratch buffers reused across decode steps."""

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """A reusable buffer of exactly ``shape``/``dtype`` for ``name``.

        Contents are unspecified — the caller must overwrite every element
        before reading.  The same ``(name, shape, dtype)`` always returns
        the same array object until :meth:`clear`.
        """
        key = (name, tuple(shape), np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        """Drop every buffer (row count changed, or the decode finished)."""
        self._buffers.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (for tests and diagnostics)."""
        return sum(buffer.nbytes for buffer in self._buffers.values())


class WeightMemo:
    """Derived-weight cache validated by array identity and grad freshness.

    The optimizers in this repo update parameter arrays *in place*, so
    caching anything computed from weights — gathered output-head columns,
    a fused QKV concatenation — must guard against silent staleness.  An
    entry is served only while every source array is the identical object
    **and** none of the governing parameters carries a gradient: a present
    gradient means a backward pass ran, after which an in-place optimizer
    step may have changed the data behind the same array object.  Owners
    additionally :meth:`clear` the memo on ``train()``/``eval()``
    transitions (every training loop in the repo brackets itself with
    them), which covers loops that end with zeroed gradients.

    Holding the source arrays in each entry keeps them alive, so a key
    built from their ``id()``s can never collide with a recycled object.
    """

    __slots__ = ("_entries", "max_entries")

    def __init__(self, max_entries: int = 64) -> None:
        self._entries: dict[tuple[int, ...], tuple[tuple, np.ndarray]] = {}
        self.max_entries = max_entries

    def get(
        self,
        sources: tuple,
        params: Sequence,
        build: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """The memoized (or freshly ``build()``-ed) derived array.

        ``sources`` are the arrays whose identities validate an entry
        (candidate-id arrays, parameter ``.data`` arrays); ``params`` are
        the :class:`~repro.tensor.Parameter` objects whose gradients gate
        caching.  ``build`` computes the derived array on a miss.
        """
        fresh = all(param.grad is None for param in params)
        key = tuple(id(source) for source in sources)
        cached = self._entries.get(key)
        if (
            fresh
            and cached is not None
            and all(held is source for held, source in zip(cached[0], sources))
        ):
            return cached[1]
        value = build()
        if fresh:
            if len(self._entries) >= self.max_entries:
                self._entries.clear()
            self._entries[key] = (sources, value)
        return value

    def clear(self) -> None:
        self._entries.clear()
