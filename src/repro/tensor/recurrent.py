"""Recurrent layers: a gated recurrent unit for the GRU4Rec baseline."""

from __future__ import annotations

import numpy as np

from .init import xavier_uniform
from .nn import Module
from .tensor import Parameter, Tensor, stack

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step.

    Gates follow Cho et al. (2014): reset ``r``, update ``z`` and candidate
    ``n`` computed from the input and previous hidden state.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(xavier_uniform(rng, (input_dim, 3 * hidden_dim)))
        self.w_hidden = Parameter(xavier_uniform(rng, (hidden_dim, 3 * hidden_dim)))
        self.b_input = Parameter(np.zeros(3 * hidden_dim, dtype=np.float32))
        self.b_hidden = Parameter(np.zeros(3 * hidden_dim, dtype=np.float32))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        gates_x = x @ self.w_input + self.b_input
        gates_h = hidden @ self.w_hidden + self.b_hidden
        d = self.hidden_dim
        r = (gates_x[:, :d] + gates_h[:, :d]).sigmoid()
        z = (gates_x[:, d : 2 * d] + gates_h[:, d : 2 * d]).sigmoid()
        n = (gates_x[:, 2 * d :] + r * gates_h[:, 2 * d :]).tanh()
        return (1.0 - z) * n + z * hidden


class GRU(Module):
    """Unidirectional (stacked) GRU over a ``(batch, time, dim)`` input."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            in_dim = input_dim if layer == 0 else hidden_dim
            cells.append(GRUCell(in_dim, hidden_dim, rng=rng))
        from .nn import ModuleList  # local import avoids a cycle at module load

        self.cells = ModuleList(cells)

    def forward(self, x: Tensor) -> Tensor:
        """Return the hidden state sequence of the last layer ``(B, T, D)``."""
        batch, seq_len, _ = x.shape
        layer_input = x
        for cell in self.cells:
            hidden = Tensor(np.zeros((batch, self.hidden_dim), dtype=np.float32))
            outputs = []
            for t in range(seq_len):
                hidden = cell(layer_input[:, t, :], hidden)
                outputs.append(hidden)
            layer_input = stack(outputs, axis=1)
        return layer_input
