"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for every neural model in the
repository (the tiny LLaMA-style language model, the RQ-VAE and all the
sequential-recommendation baselines).  It implements a small but complete
autograd engine in the style of PyTorch: a :class:`Tensor` wraps a numpy
array, records the operations applied to it on a tape, and
:meth:`Tensor.backward` walks the tape in reverse topological order
accumulating gradients.

Design notes
------------
* Everything is vectorised; backward closures capture numpy arrays only.
* Gradients flow through broadcasting: ``_unbroadcast`` sums a gradient
  down to the shape of the original operand.
* A per-thread ``no_grad`` switch disables taping for inference paths
  (beam search, evaluation), which keeps generation fast.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "as_tensor"]

# Per-thread, so a background serving thread decoding under ``no_grad``
# cannot switch taping off (or back on) under a training thread's feet.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size one.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating point data is stored as
        ``float32`` unless it already has a floating dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype == np.float64:
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, recording it on the tape when appropriate."""
        needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
                continue
            if node._backward is None:
                continue
            # Intermediate: route gradient to parents through the closure.
            node._backward_dispatch(node_grad, grads)
        # Release the graph so intermediate buffers can be collected.
        self._release_graph(topo)

    def _backward_dispatch(self, grad: np.ndarray, grads: dict[int, np.ndarray]):
        contributions = self._backward(grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not (parent.requires_grad or parent._backward is not None):
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    @staticmethod
    def _release_graph(topo: list["Tensor"]) -> None:
        for node in topo:
            node._backward = None
            node._parents = ()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        a, b = self, other

        def backward(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data
        a, b = self, other

        def backward(g):
            return (_unbroadcast(g, a.shape), _unbroadcast(-g, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        a, b = self, other

        def backward(g):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        a, b = self, other

        def backward(g):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (a,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self
        out_data = self.data**exponent

        def backward(g):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        if a.data.ndim >= 3 and b.data.ndim == 2:
            # Fold the batch dims into one GEMM: numpy dispatches
            # (B, T, k) @ (k, m) as B separate (T, k) products, which for
            # the decode hot path's (B*K, 1, k) activations degenerates
            # into thousands of thin GEMVs.  One (B*T, k) @ (k, m) call
            # is the same arithmetic in a single BLAS dispatch, and the
            # gradients likewise fold (the batched ``aᵀ @ g`` summed over
            # batch dims *is* the folded two-dimensional product).
            lead = a.data.shape[:-1]
            a2 = np.ascontiguousarray(a.data).reshape(-1, a.data.shape[-1])
            out_data = (a2 @ b.data).reshape(*lead, b.data.shape[-1])

            def backward_folded(g):
                g2 = g.reshape(-1, g.shape[-1])
                ga = (g2 @ b.data.T).reshape(a.data.shape)
                gb = a2.T @ g2
                return (ga, gb)

            return Tensor._make(out_data, (a, b), backward_folded)
        out_data = a.data @ b.data

        def backward(g):
            if b.data.ndim == 1:
                # (…, n) @ (n,) -> (…)
                ga = g[..., None] * b.data
                gb = np.tensordot(g, a.data, axes=(range(g.ndim), range(g.ndim)))
                return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))
            if a.data.ndim == 1:
                # (n,) @ (n, m) -> (m,)
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.outer(a.data, g)
                return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        a = self
        inverse = np.argsort(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (a,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        a = self

        def backward(g):
            return (np.swapaxes(g, axis1, axis2),)

        return Tensor._make(np.swapaxes(self.data, axis1, axis2), (a,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = self.shape

        def backward(g):
            return (g.reshape(original),)

        return Tensor._make(self.data.reshape(shape), (a,), backward)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        a = self
        out_data = self.data[index]
        shape = self.shape

        def backward(g):
            grad = np.zeros(shape, dtype=np.float32)
            np.add.at(grad, index, g)
            return (grad,)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, shape).astype(np.float32),)
            g_expanded = g
            if not keepdims:
                g_expanded = np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, shape).astype(np.float32),)

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        # Route gradient to the first maximal element only (ties broken).
        argmax = self.data.argmax(axis=axis)
        shape = self.shape

        def backward(g):
            grad = np.zeros(shape, dtype=np.float32)
            g_arr = g if keepdims else np.expand_dims(g, axis)
            indices = list(np.indices(argmax.shape))
            indices.insert(axis if axis >= 0 else self_ndim + axis, argmax)
            grad[tuple(indices)] = np.squeeze(g_arr, axis=axis)
            return (grad,)

        self_ndim = self.ndim
        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(g):
            return (g / a.data,)

        return Tensor._make(np.log(self.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = self.data > 0

        def backward(g):
            return (g * mask,)

        return Tensor._make(self.data * mask, (a,), backward)

    def silu(self) -> "Tensor":
        """SiLU / swish activation: ``x * sigmoid(x)`` (used by SwiGLU)."""
        a = self
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(g):
            return (g * (sig + self.data * sig * (1.0 - sig)),)

        return Tensor._make(out_data, (a,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        a = self
        x = self.data
        c = np.float32(np.sqrt(2.0 / np.pi))
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(g):
            dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x * x)
            return (g * (0.5 * (1.0 + t) + 0.5 * x * dt),)

        return Tensor._make(out_data, (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(self.data)

        def backward(g):
            return (g * sign,)

        return Tensor._make(np.abs(self.data), (a,), backward)


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for i in range(len(sizes)):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``.

    ``condition`` is a plain boolean numpy array (not differentiable).
    """
    a = as_tensor(a)
    b = as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g):
        return (
            _unbroadcast(np.where(cond, g, 0.0), a.shape),
            _unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward)
