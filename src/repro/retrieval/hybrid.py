"""Hybrid recommendation: retrieval narrows, constrained decode re-ranks.

The two lanes of the serving stack meet here.  For each history the
retrieval tier proposes ``num_candidates`` items in microseconds; the
generative engine then decodes over a *narrowed* trie built from exactly
those candidates (:meth:`GenerativeEngine.narrowed`), so the sparse
output head gathers only candidate-path token unions — a smaller GEMM
per step — while the constrained log-softmax keeps renormalising over
the full trie.  The decode therefore ranks the candidate set exactly as
a full decode would (the parity the test battery and the hybrid bench
both assert); what changes is only the work.

Cold-start histories — empty, or containing no item the retrieval index
knows — skip the LLM entirely and return the retrieval tier's
deterministic popularity ranking, because the trie-constrained decoder
has no signal for them either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .recommender import RetrievalRecommender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.engine import GenerativeEngine

__all__ = ["HybridRecommender"]


class HybridRecommender:
    """Retrieval-narrowed constrained decoding over a generative engine."""

    def __init__(
        self,
        engine: "GenerativeEngine",
        retriever: RetrievalRecommender,
        num_candidates: int = 32,
    ):
        if not engine.supports_narrowing:
            raise ValueError(
                f"{type(engine).__name__} does not support candidate narrowing"
            )
        if num_candidates < 1:
            raise ValueError("num_candidates must be positive")
        self.engine = engine
        self.retriever = retriever
        self.num_candidates = num_candidates
        # Only items the trie can decode may narrow it.  The decodable set
        # is snapshotted per trie *identity*: an online catalog swap gives
        # the engine a new trie object, and the next candidates() call
        # rebuilds the set against it — the hybrid tracks the live catalog
        # without being rebuilt.  (``retriever`` may likewise be a
        # ``LiveCatalog``, which proxies the current version's retrieval
        # recommender, keeping both lanes on the same catalog version.)
        self._decodable = frozenset(engine_items(engine))
        self._decodable_trie = engine.trie

    def _decodable_items(self) -> frozenset:
        trie = self.engine.trie
        if trie is not self._decodable_trie:
            # Racing rebuilds are idempotent; set the payload before the
            # marker so a concurrent reader never pairs a new marker with
            # the old set.
            self._decodable = frozenset(engine_items(self.engine))
            self._decodable_trie = trie
        return self._decodable

    def candidates(self, history: Sequence[int], top_k: int) -> list[int]:
        """The decodable retrieval candidates for one history."""
        decodable = self._decodable_items()
        pool = self.retriever.recommend(history, max(self.num_candidates, top_k))
        return [item for item in pool if item in decodable]

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        return self.recommend_many([history], top_k=top_k)[0]

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10
    ) -> list[list[int]]:
        """Ranked item ids per history: decode-ranked candidates, backfilled.

        Histories sharing one candidate set decode together in one
        narrowed batch; candidates beyond what the decode surfaces (and,
        after them, the retrieval ranking) backfill to ``top_k``.
        """
        if top_k < 1:
            raise ValueError("top_k must be positive")
        results: list[list[int] | None] = [None] * len(histories)
        groups: dict[tuple[int, ...], list[int]] = {}
        row_candidates: list[list[int]] = []
        for row, history in enumerate(histories):
            if self.retriever.profile(history) is None:
                # Cold start: the decoder has no history signal either.
                results[row] = self.retriever.recommend(history, top_k)
                row_candidates.append([])
                continue
            candidates = self.candidates(history, top_k)
            row_candidates.append(candidates)
            if not candidates:
                results[row] = self.retriever.recommend(history, top_k)
                continue
            groups.setdefault(tuple(candidates), []).append(row)
        for candidate_key, rows in groups.items():
            narrowed = self.engine.narrowed(candidate_key)
            ranked_lists = narrowed.recommend_many(
                [histories[row] for row in rows],
                top_k=min(top_k, len(candidate_key)),
            )
            for row, ranked in zip(rows, ranked_lists):
                results[row] = self.backfill(ranked, row_candidates[row], top_k)
        return [result if result is not None else [] for result in results]

    def backfill(self, ranked: list[int], candidates: list[int], top_k: int) -> list[int]:
        """Extend a short decode ranking from the retrieval order.

        Public because the serving lane (``RecommendationService`` with a
        ``hybrid=``) finalizes narrowed decodes through the same rule, so
        a client-submitted request and a library :meth:`recommend` call
        return identical lists.
        """
        target = min(top_k, self.retriever.num_items)
        if len(ranked) >= target:
            return ranked[:top_k]
        seen = set(ranked)
        for item in candidates:
            if len(ranked) >= target:
                break
            if item not in seen:
                ranked.append(item)
                seen.add(item)
        for item in self.retriever.popularity_order:
            if len(ranked) >= target:
                break
            if int(item) not in seen:
                ranked.append(int(item))
                seen.add(int(item))
        return ranked


def engine_items(engine: "GenerativeEngine") -> list[int]:
    """The item ids an engine's trie can decode."""
    return list(engine.trie.all_sequences().keys())
