"""Clustered-KNN retrieval over stacked item vectors.

The microsecond lane of the hybrid serving stack: items are clustered
once with k-means (reusing the RQ-VAE's Lloyd's-iteration kernel from
``repro.quantization.codebook``), and a query probes only the top-``C``
clusters by centroid similarity before exact dot-product ranking within
the probed members — pure numpy, no model forward anywhere.

Determinism is part of the contract, not an accident: cluster assignment
is seeded, probe order breaks centroid-score ties by cluster index, and
the final ranking breaks item-score ties by the smaller item id.  With
``n_clusters=1`` (or probing every cluster) the result is *identical* to
brute-force KNN over the whole catalog — the parity oracle the test
battery pins (``tests/test_retrieval.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantization.codebook import kmeans, nearest_code

__all__ = ["ClusteredKNNConfig", "ClusteredKNNIndex", "brute_force_topk", "rank_by_score"]


def rank_by_score(item_ids: np.ndarray, scores: np.ndarray, top_k: int) -> np.ndarray:
    """``item_ids`` ranked by descending score, ties by smaller id.

    One lexsort, shared by the clustered and brute-force paths so a
    tie-breaking change can never make them disagree.
    """
    order = np.lexsort((item_ids, -scores))
    return item_ids[order[: min(top_k, item_ids.shape[0])]]


def brute_force_topk(vectors: np.ndarray, query: np.ndarray, top_k: int) -> np.ndarray:
    """Exact dot-product top-``k`` over every row of ``vectors``.

    The parity oracle for :meth:`ClusteredKNNIndex.search`.  Scores each
    row with the same vector kernel the clustered path uses (a gathered
    matrix–vector product), so equal inputs produce bitwise-equal scores.
    """
    scores = vectors @ query
    return rank_by_score(np.arange(vectors.shape[0], dtype=np.int64), scores, top_k)


@dataclass(frozen=True)
class ClusteredKNNConfig:
    """Clustering and probing knobs of a :class:`ClusteredKNNIndex`.

    ``n_clusters`` is clamped to the catalog size at build time.
    ``n_probe`` clusters are scored per query (widened automatically when
    they hold fewer than ``top_k`` members, so a full catalog always
    yields a full ``top_k``).  ``seed`` fixes the k-means initialisation:
    two indices built from equal vectors and equal configs are identical.
    """

    n_clusters: int = 16
    n_probe: int = 4
    kmeans_iters: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if self.n_probe < 1:
            raise ValueError("n_probe must be positive")


class ClusteredKNNIndex:
    """K-means-clustered exact-within-probe KNN over item vectors.

    Built once from an ``(N, D)`` float matrix (row ``i`` = item ``i``);
    :meth:`search` then costs one ``(k, D)`` centroid scoring plus one
    gathered dot product over the probed members instead of the full
    catalog.  The index is immutable after construction (the vector
    matrix is copied and frozen), so concurrent readers need no locking —
    exactly what the serving fast lane requires.
    """

    def __init__(self, vectors: np.ndarray, config: ClusteredKNNConfig | None = None):
        vectors = np.array(vectors, dtype=np.float32, copy=True)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D (items, dim), got shape {vectors.shape}")
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty catalog")
        vectors.setflags(write=False)
        self.vectors = vectors
        self.config = config or ClusteredKNNConfig()
        k = min(self.config.n_clusters, vectors.shape[0])
        rng = np.random.default_rng(self.config.seed)
        self.centers = kmeans(vectors, k, rng, num_iters=self.config.kmeans_iters)
        self.centers.setflags(write=False)
        assignments = nearest_code(vectors, self.centers)
        self.members: list[np.ndarray] = []
        for cluster in range(k):
            member_ids = np.flatnonzero(assignments == cluster).astype(np.int64)
            member_ids.setflags(write=False)
            self.members.append(member_ids)
        # Inserts absorbed since the last full k-means run (see with_vector).
        self.pending_inserts = 0

    def with_vector(self, vector: np.ndarray) -> "ClusteredKNNIndex":
        """A new index containing one more item, sharing this clustering.

        The incremental insert of the live-catalog path: the new row (item
        id ``num_items``) is assigned to its nearest *existing* center —
        no k-means re-run — so the cost is one ``(k, D)`` scoring plus one
        member-array extension, and every other cluster's member array is
        shared by identity.  ``self`` is untouched (frozen arrays, new
        wrapper), so concurrent readers of the old index are safe.

        ``pending_inserts`` counts inserts absorbed since the last full
        clustering; the caller (``LiveCatalog``) re-clusters periodically
        — a fresh :class:`ClusteredKNNIndex` over ``vectors`` — so probe
        quality cannot degrade without bound under sustained churn.
        """
        vector = np.asarray(vector, dtype=np.float32)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},), got {vector.shape}")
        vectors = np.concatenate([self.vectors, vector[None, :]], axis=0)
        vectors.setflags(write=False)
        clone = ClusteredKNNIndex.__new__(ClusteredKNNIndex)
        clone.vectors = vectors
        clone.config = self.config
        clone.centers = self.centers
        cluster = int(nearest_code(vector[None, :], self.centers)[0])
        members = list(self.members)
        extended = np.concatenate(
            [members[cluster], np.array([self.num_items], dtype=np.int64)]
        )
        extended.setflags(write=False)
        members[cluster] = extended
        clone.members = members
        clone.pending_inserts = self.pending_inserts + 1
        return clone

    @property
    def num_items(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    @property
    def num_clusters(self) -> int:
        return int(self.centers.shape[0])

    def probe_order(self, query: np.ndarray) -> np.ndarray:
        """Cluster indices by descending centroid score, ties by index."""
        scores = self.centers @ query.astype(np.float32, copy=False)
        return np.lexsort((np.arange(self.num_clusters), -scores))

    def _probed_members(self, query: np.ndarray, top_k: int, n_probe: int) -> np.ndarray:
        """Member ids of the probed clusters, widened until ``top_k`` fit.

        Takes the first ``n_probe`` clusters of the probe order, then — if
        they hold fewer than ``top_k`` members — keeps appending clusters
        in probe order.  Deterministic, and degrades to the whole catalog
        only when the query genuinely needs it.
        """
        order = self.probe_order(query)
        parts: list[np.ndarray] = []
        total = 0
        for position, cluster in enumerate(order):
            if position >= n_probe and total >= top_k:
                break
            members = self.members[int(cluster)]
            if members.size:
                parts.append(members)
                total += members.size
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def search(
        self, query: np.ndarray, top_k: int, n_probe: int | None = None
    ) -> np.ndarray:
        """The ``top_k`` item ids nearest ``query`` by dot product.

        Probes ``n_probe`` clusters (default from the config; pass
        ``self.num_clusters`` for exact search).  Returns fewer than
        ``top_k`` ids only when the whole catalog is smaller.
        """
        if top_k < 1:
            raise ValueError("top_k must be positive")
        query = np.asarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {query.shape}")
        if n_probe is None:
            n_probe = min(self.config.n_probe, self.num_clusters)
        members = self._probed_members(query, top_k, int(n_probe))
        scores = self.vectors[members] @ query
        return rank_by_score(members, scores, top_k)

    def search_many(
        self, queries: np.ndarray, top_k: int, n_probe: int | None = None
    ) -> list[np.ndarray]:
        """:meth:`search` for each row of a ``(Q, D)`` query matrix."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(f"queries must have shape (Q, {self.dim}), got {queries.shape}")
        return [self.search(query, top_k, n_probe=n_probe) for query in queries]
