"""The retrieval tier: clustered-KNN candidates over item vectors.

The collaborative-embedding lane of the hybrid serving stack (see
``docs/retrieval.md``): a numpy-only, microsecond-latency recommender
that serves as (a) the graceful-degradation fast lane when the LLM lane
sheds load, (b) the cold-start path for histories the trie-constrained
decoder cannot rank, and (c) the candidate generator that *narrows* the
trie before constrained decode.
"""

from .knn import ClusteredKNNConfig, ClusteredKNNIndex, brute_force_topk, rank_by_score
from .recommender import RetrievalRecommender
from .hybrid import HybridRecommender

__all__ = [
    "ClusteredKNNConfig",
    "ClusteredKNNIndex",
    "HybridRecommender",
    "RetrievalRecommender",
    "brute_force_topk",
    "rank_by_score",
]
