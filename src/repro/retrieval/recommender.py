"""The retrieval recommender: user profile → clustered-KNN candidates.

Turns the raw :class:`~repro.retrieval.knn.ClusteredKNNIndex` into a
history-in / ranked-item-ids-out recommender with the serving layer's
result contract:

* a user profile is the mean of the history items' vectors (ids outside
  the catalog are ignored — a freshly ingested item the index predates
  simply does not contribute),
* cold-start users (empty or fully-unknown histories) fall back to a
  deterministic popularity ranking computed once from the training
  split, and the same popularity order backfills short retrieval lists,
* every call returns exactly ``min(top_k, num_items)`` distinct item
  ids, deterministically.

This object is what the serving stack types as a *fallback recommender*:
anything with ``recommend(history, top_k) -> list[int]`` works, and this
implementation is numpy-only with no model forward, so it answers in
microseconds — cheap enough to run for every shed request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..eval.popularity import item_popularity
from .knn import ClusteredKNNConfig, ClusteredKNNIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lcrec import LCRec

__all__ = ["RetrievalRecommender"]


class RetrievalRecommender:
    """Clustered-KNN candidate generation with a popularity cold-start lane."""

    def __init__(
        self,
        index: ClusteredKNNIndex,
        popularity: np.ndarray | Sequence[int] | None = None,
    ):
        """``popularity[i]`` = training interaction count of item ``i``.

        Omitted counts mean the cold-start ranking degrades to plain
        item-id order (still deterministic, just uninformed).
        """
        self.index = index
        num_items = index.num_items
        if popularity is None:
            counts = np.zeros(num_items, dtype=np.int64)
        else:
            counts = np.array(popularity, dtype=np.int64, copy=True)
            if counts.shape != (num_items,):
                raise ValueError(
                    f"popularity must have shape ({num_items},), got {counts.shape}"
                )
        # Raw counts are retained (frozen) so a live catalog can extend
        # them with a new item's count when it versions the recommender.
        counts.setflags(write=False)
        self.popularity_counts = counts
        # Descending count, ties by smaller item id: the cold-start
        # ranking and the backfill order, fixed at construction.
        self.popularity_order = np.lexsort((np.arange(num_items), -counts))
        self.popularity_order.setflags(write=False)

    def with_item(self, vector: np.ndarray, popularity_count: int = 0) -> "RetrievalRecommender":
        """A new recommender whose index contains one more item.

        The incremental lane of the live catalog: the item's vector joins
        the KNN index through :meth:`ClusteredKNNIndex.with_vector`
        (shared clustering, nearest-center assignment) and enters the
        popularity order with ``popularity_count`` training interactions —
        0 for a brand-new item, which ranks it after every seen item in
        the cold-start/backfill order (ties by id).  ``self`` is left
        untouched for readers pinned to the old catalog version.
        """
        index = self.index.with_vector(vector)
        counts = np.concatenate(
            [self.popularity_counts, np.array([int(popularity_count)], dtype=np.int64)]
        )
        return RetrievalRecommender(index, popularity=counts)

    def reclustered(self) -> "RetrievalRecommender":
        """This recommender with a fresh k-means run over its vectors.

        Incremental inserts (:meth:`with_item`) keep the original centers;
        after enough of them the clustering drifts from the data.  The
        live catalog calls this periodically so probe quality under churn
        tracks a from-scratch build.
        """
        index = ClusteredKNNIndex(self.index.vectors, self.index.config)
        return RetrievalRecommender(index, popularity=self.popularity_counts)

    @classmethod
    def from_lcrec(
        cls,
        model: "LCRec",
        config: ClusteredKNNConfig | None = None,
        reconstructed: bool = True,
    ) -> "RetrievalRecommender":
        """Build the retrieval tier from a built LC-Rec model.

        Item vectors are the RQ-VAE reconstructions of the item text
        embeddings by default — the collaborative-semantic representation
        the index tokens quantize, so retrieval and the trie speak about
        the same geometry — or the raw text embeddings with
        ``reconstructed=False`` (also the automatic fallback when the
        model was built without an RQ-VAE, e.g. vanilla/random indexing).
        Popularity comes from the model's training split.
        """
        model._require_built()
        if model.item_embeddings is None:
            raise ValueError(
                "LCRec has no item embeddings; build with semantic indexing "
                "or construct RetrievalRecommender from explicit vectors"
            )
        vectors = model.item_embeddings
        if reconstructed and model.rqvae is not None:
            vectors = model.rqvae.reconstruct(vectors)
        index = ClusteredKNNIndex(vectors, config)
        counts = item_popularity(model.dataset.split.train_sequences, index.num_items)
        return cls(index, popularity=counts)

    @property
    def num_items(self) -> int:
        return self.index.num_items

    def profile(self, history: Sequence[int]) -> np.ndarray | None:
        """Mean vector of the in-catalog history items (None = cold start)."""
        ids = [int(item) for item in history if 0 <= int(item) < self.num_items]
        if not ids:
            return None
        return self.index.vectors[ids].mean(axis=0)

    def _popularity_prefix(self, top_k: int) -> list[int]:
        return [int(item) for item in self.popularity_order[:top_k]]

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        """``min(top_k, num_items)`` distinct item ids, best first."""
        if top_k < 1:
            raise ValueError("top_k must be positive")
        query = self.profile(history)
        if query is None:
            return self._popularity_prefix(top_k)
        ranked = [int(item) for item in self.index.search(query, top_k)]
        if len(ranked) < min(top_k, self.num_items):
            seen = set(ranked)
            for item in self.popularity_order:
                if int(item) not in seen:
                    ranked.append(int(item))
                    if len(ranked) == top_k:
                        break
        return ranked

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10
    ) -> list[list[int]]:
        return [self.recommend(history, top_k) for history in histories]
