"""Vector quantisation: RQ-VAE, Sinkhorn USM, index construction, trie."""

from .codebook import kmeans, nearest_code, pairwise_sq_distances
from .diagnostics import LevelUsage, codebook_usage
from .indexing import (
    IndexConflictError,
    ItemIndexSet,
    build_semantic_indices,
    code_token_strings,
    count_conflicts,
    resolve_conflicts_extra_level,
    resolve_conflicts_usm,
)
from .rqvae import Codebook, QuantizationResult, RQVAE, RQVAEConfig
from .sinkhorn import sinkhorn_knopp, uniform_assign
from .training import RQVAETrainer, RQVAETrainerConfig
from .trie import IndexTrie

__all__ = [
    "RQVAE",
    "RQVAEConfig",
    "Codebook",
    "QuantizationResult",
    "RQVAETrainer",
    "RQVAETrainerConfig",
    "sinkhorn_knopp",
    "uniform_assign",
    "kmeans",
    "nearest_code",
    "pairwise_sq_distances",
    "ItemIndexSet",
    "IndexConflictError",
    "build_semantic_indices",
    "code_token_strings",
    "count_conflicts",
    "resolve_conflicts_usm",
    "resolve_conflicts_extra_level",
    "IndexTrie",
    "LevelUsage",
    "codebook_usage",
]
