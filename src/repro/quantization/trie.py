"""Prefix trie over item-index token sequences.

Built from the learned item indices, the trie drives constrained beam
search: at each decoding level only tokens that extend some *real* item's
index are allowed (paper Sec. III-D2), so generation can never produce an
out-of-catalog item.

Beyond membership queries, the trie is the *sparsity oracle* of the decode
hot path: a trie level has at most ``codebook_size`` distinct continuations
out of a vocabulary that is one to two orders of magnitude larger, and
:meth:`IndexTrie.allowed_token_ids` exposes exactly that structure — the
per-row legal continuations plus a memoized per-level *candidate union* —
so the language model can compute logits for the candidate tokens only
(see ``TinyLlama.lm_head_gather``) instead of the full vocabulary.

All derived lookups (dense masks, level unions, union-space rows, the root
mask) are cached; :meth:`IndexTrie.add_item` mutates in place and
:meth:`IndexTrie.with_item` produces a copy-on-write snapshot — both
refresh only the caches the insertion can actually stale.  The memoized
arrays are returned read-only and with a stable identity, which downstream
weight-gather caches key on: an insertion that does not change a level's
candidate union keeps that union's identity, so those caches stay warm.

Snapshots share per-prefix child sets and memoized arrays with their
parent, so shared structures are never mutated after publication: an
insertion *replaces* a changed prefix's child set and allowed array
instead of updating them in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["IndexTrie", "SparseCandidates"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


@dataclass(frozen=True)
class SparseCandidates:
    """Legal continuations of a batch of prefixes, in candidate space.

    ``union`` is the memoized, sorted union of every candidate token id for
    the trie levels the prefixes sit at (a stable, read-only array — its
    identity is a valid cache key for gathered weight slices).  ``mask``
    restricts the union per row: ``mask[i, j]`` is True iff ``union[j]``
    legally extends ``prefixes[i]``.  ``per_row[i]`` is the same set as a
    sorted id array (empty for illegal prefixes).
    """

    per_row: list[np.ndarray]  # row -> sorted legal token ids
    union: np.ndarray  # sorted union over the rows' trie levels
    mask: np.ndarray  # (rows, len(union)) bool

    @property
    def num_candidates(self) -> int:
        return int(self.union.shape[0])

    def is_forced(self, alive: np.ndarray | None = None) -> bool:
        """Whether every (alive) row has exactly one legal continuation.

        ``alive`` optionally marks rows that still matter (beam rows with a
        finite score); dead filler rows may have any number of legal
        continuations — including zero — without breaking forcedness.
        """
        if alive is None:
            return all(ids.size == 1 for ids in self.per_row)
        return all(
            ids.size == 1 or not bool(alive[row]) for row, ids in enumerate(self.per_row)
        )

    def forced_tokens(self, pad_id: int = 0) -> np.ndarray:
        """The single legal continuation per row (``pad_id`` for dead rows)."""
        return np.fromiter(
            (ids[0] if ids.size else pad_id for ids in self.per_row),
            dtype=np.int64,
            count=len(self.per_row),
        )


class IndexTrie:
    """Maps token-id prefixes to allowed continuations and leaf item ids."""

    def __init__(self, sequences: dict[int, tuple[int, ...]]):
        """Build from ``{item_id: (token_id, token_id, ...)}``.

        Every sequence must have the same length and sequences must be
        unique (one leaf = one item) — the uniqueness the USM step provides.
        """
        if not sequences:
            raise ValueError("cannot build a trie from no sequences")
        lengths = {len(seq) for seq in sequences.values()}
        if len(lengths) != 1:
            raise ValueError(f"all index sequences must share a length: {lengths}")
        self.num_levels = lengths.pop()
        if self.num_levels == 0:
            raise ValueError("index sequences must be non-empty")

        self._children: dict[tuple[int, ...], set[int]] = {}
        self._leaf_to_item: dict[tuple[int, ...], int] = {}
        for item_id, seq in sequences.items():
            self._insert(item_id, seq)
        self._invalidate_derived()

    def _insert(self, item_id: int, seq: tuple[int, ...]) -> None:
        seq = tuple(int(t) for t in seq)
        if seq in self._leaf_to_item:
            other = self._leaf_to_item[seq]
            raise ValueError(f"duplicate index sequence {seq} for items {other} and {item_id}")
        self._leaf_to_item[seq] = item_id
        for depth in range(self.num_levels):
            prefix = seq[:depth]
            self._children.setdefault(prefix, set()).add(seq[depth])

    def _invalidate_derived(self) -> None:
        """Rebuild every cache derived from the trie's structure.

        Called on construction and after every mutation
        (:meth:`add_item`): the per-prefix allowed arrays are rebuilt and
        all memoized masks, level unions, union-space rows and the root
        mask are dropped, so no caller can observe a stale constraint.
        """
        self._allowed_cache: dict[tuple[int, ...], np.ndarray] = {}
        for prefix, children in self._children.items():
            allowed = np.array(sorted(children), dtype=np.int64)
            allowed.setflags(write=False)
            self._allowed_cache[prefix] = allowed
        self._mask_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._mask_vocab_size = 0
        self._level_unions: dict[tuple[int, ...], np.ndarray] = {}
        self._union_rows: dict[tuple[tuple[int, ...], tuple[int, ...]], np.ndarray] = {}
        self._root_mask: np.ndarray | None = None
        self.max_token_id = max(
            token for children in self._children.values() for token in children
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validated_new_sequence(self, item_id: int, sequence: tuple[int, ...]) -> tuple[int, ...]:
        sequence = tuple(int(t) for t in sequence)
        if len(sequence) != self.num_levels:
            raise ValueError(
                f"sequence depth {len(sequence)} does not match trie depth {self.num_levels}"
            )
        if sequence in self._leaf_to_item:
            other = self._leaf_to_item[sequence]
            raise ValueError(
                f"duplicate index sequence {sequence} for items {other} and {item_id}"
            )
        return sequence

    def _insert_path(self, sequence: tuple[int, ...]) -> set[tuple[int, ...]]:
        """Insert ``sequence``'s path, replacing (never mutating) child sets.

        A snapshot (:meth:`with_item`) shares set objects and allowed
        arrays with its parent, so a changed prefix's set is replaced with
        a copy; unchanged prefixes keep their set *and* allowed-array
        identity.  Returns the prefixes whose child set actually changed.
        """
        changed: set[tuple[int, ...]] = set()
        for depth in range(self.num_levels):
            prefix = sequence[:depth]
            token = sequence[depth]
            children = self._children.get(prefix)
            if children is not None and token in children:
                continue
            children = set(children) if children is not None else set()
            children.add(token)
            self._children[prefix] = children
            allowed = np.array(sorted(children), dtype=np.int64)
            allowed.setflags(write=False)
            self._allowed_cache[prefix] = allowed
            self._mask_cache.pop(prefix, None)
            changed.add(prefix)
        return changed

    def _scoped_invalidate(
        self, sequence: tuple[int, ...], changed_prefixes: set[tuple[int, ...]]
    ) -> None:
        """Drop only the cross-prefix memos the insertion can stale.

        A level whose path prefix is unchanged — or whose memoized union
        already contains the inserted token — keeps its union array
        identity, so gathered-weight caches keyed on that identity stay
        warm.  Union-space rows survive iff neither their prefix nor any
        of their levels changed.
        """
        changed_levels: set[int] = set()
        for depth, token in enumerate(sequence):
            if sequence[:depth] not in changed_prefixes:
                continue
            union = self._level_unions.get((depth,))
            if union is not None:
                pos = int(np.searchsorted(union, token))
                if pos < union.shape[0] and int(union[pos]) == token:
                    continue
            changed_levels.add(depth)
        self._level_unions = {
            levels: union
            for levels, union in self._level_unions.items()
            if not changed_levels.intersection(levels)
        }
        self._union_rows = {
            key: row
            for key, row in self._union_rows.items()
            if key[1] not in changed_prefixes and not changed_levels.intersection(key[0])
        }
        if () in changed_prefixes:
            self._root_mask = None
        self.max_token_id = max(self.max_token_id, max(sequence))

    def add_item(self, item_id: int, sequence: tuple[int, ...]) -> None:
        """Insert one more item's index sequence (catalog growth), in place.

        The sequence must have the trie's depth and be unused.  Every
        derived cache the insertion can stale — the allowed arrays and
        dense mask rows of the prefixes along the inserted path, plus the
        cross-prefix memos (level unions, union-space rows, the cached
        root mask) that the new tokens actually extend — is refreshed or
        dropped, so in-flight callers that re-query the trie see the new
        item immediately.  The update is incremental (``O(levels)`` prefix
        rebuilds, not a whole-trie rebuild), so growing a catalog item by
        item stays linear.  For a publication-safe variant that leaves
        ``self`` untouched, see :meth:`with_item`.
        """
        sequence = self._validated_new_sequence(item_id, sequence)
        self._leaf_to_item[sequence] = item_id
        changed = self._insert_path(sequence)
        self._scoped_invalidate(sequence, changed)

    def with_item(self, item_id: int, sequence: tuple[int, ...]) -> "IndexTrie":
        """A copy-on-write snapshot of this trie containing one more item.

        ``self`` is left completely untouched — in-flight decodes pinned
        to it keep decoding against exactly the catalog they started with
        — while the snapshot shares every unchanged structure and derived
        memo with its parent, *including identities*: allowed arrays and
        level unions the insertion does not change are the same array
        objects, so downstream gathered-weight caches keyed on them stay
        warm across a catalog version swap.  Only the ``O(levels)``
        prefixes along the inserted path (and the memos the new tokens
        actually extend) are rebuilt.
        """
        sequence = self._validated_new_sequence(item_id, sequence)
        clone = IndexTrie.__new__(IndexTrie)
        clone.num_levels = self.num_levels
        clone._children = dict(self._children)
        clone._leaf_to_item = dict(self._leaf_to_item)
        clone._allowed_cache = dict(self._allowed_cache)
        clone._mask_cache = dict(self._mask_cache)
        clone._mask_vocab_size = self._mask_vocab_size
        clone._level_unions = dict(self._level_unions)
        clone._union_rows = dict(self._union_rows)
        clone._root_mask = self._root_mask
        clone.max_token_id = self.max_token_id
        clone._leaf_to_item[sequence] = item_id
        changed = clone._insert_path(sequence)
        clone._scoped_invalidate(sequence, changed)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def allowed_tokens(self, prefix: tuple[int, ...]) -> np.ndarray:
        """Token ids that legally extend ``prefix`` (empty array if none)."""
        prefix = tuple(int(t) for t in prefix)
        return self._allowed_cache.get(prefix, _EMPTY)

    def allowed_token_mask(
        self, prefixes: list[tuple[int, ...]], vocab_size: int
    ) -> np.ndarray:
        """Boolean ``(len(prefixes), vocab_size)`` constraint mask.

        Row ``i`` is True exactly at the token ids that legally extend
        ``prefixes[i]`` (all-False for unknown/illegal prefixes).  Per-prefix
        rows are cached, so constrained decoding pays one dictionary lookup
        and one stack per step instead of per-hypothesis Python loops.
        """
        if vocab_size <= self.max_token_id:
            raise ValueError(
                f"vocab_size {vocab_size} too small for trie tokens "
                f"(max id {self.max_token_id})"
            )
        if vocab_size != self._mask_vocab_size:
            self._mask_cache = {}
            self._root_mask = None
            self._mask_vocab_size = vocab_size
        rows = []
        for prefix in prefixes:
            prefix = tuple(int(t) for t in prefix)
            row = self._mask_cache.get(prefix)
            if row is None:
                row = np.zeros(vocab_size, dtype=bool)
                allowed = self._allowed_cache.get(prefix)
                if allowed is not None:
                    row[allowed] = True
                self._mask_cache[prefix] = row
            rows.append(row)
        return np.stack(rows, axis=0)

    def root_token_mask(self, vocab_size: int) -> np.ndarray:
        """Cached ``(1, vocab_size)`` mask of the legal *first* index tokens.

        Every prefill of every request starts from the root, so this mask
        is the hottest trie lookup in the serving path; it is built once
        per vocabulary size, returned read-only (callers must not mutate
        it), and invalidated on trie mutation (:meth:`add_item`).
        """
        if self._root_mask is not None and self._root_mask.shape[1] == vocab_size:
            return self._root_mask
        mask = self.allowed_token_mask([()], vocab_size).copy()
        mask.setflags(write=False)
        self._root_mask = mask
        return mask

    def level_union(self, level: int) -> np.ndarray:
        """Sorted union of every token id appearing at trie depth ``level``.

        This is the *candidate set* of a decode step whose beams all sit at
        ``level``: at most ``codebook_size`` ids out of the whole
        vocabulary.  Memoized with a stable identity (and returned
        read-only) so gathered output-head weights can be cached against
        the array object itself; invalidated on :meth:`add_item`.
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range for depth {self.num_levels}")
        return self._union_for_levels((level,))

    def union_for_levels(self, levels: Sequence[int]) -> np.ndarray:
        """Sorted union of the token ids appearing at any depth in ``levels``.

        The multi-level generalisation of :meth:`level_union`, memoized
        under the same normalised key :meth:`allowed_token_ids` uses for
        its union — so a speculative two-level decode step and a mixed
        -depth batched step stepping the same levels share one stable,
        read-only array (and therefore one gathered output-head memo
        entry).  Invalidated on :meth:`add_item`.
        """
        normalized = tuple(sorted({int(level) for level in levels}))
        if not normalized:
            raise ValueError("levels must be non-empty")
        for level in normalized:
            if not 0 <= level < self.num_levels:
                raise ValueError(
                    f"level {level} out of range for depth {self.num_levels}"
                )
        return self._union_for_levels(normalized)

    def _union_for_levels(self, levels: tuple[int, ...]) -> np.ndarray:
        union = self._level_unions.get(levels)
        if union is None:
            if len(levels) == 1:
                tokens: set[int] = set()
                for prefix, children in self._children.items():
                    if len(prefix) == levels[0]:
                        tokens.update(children)
                union = np.array(sorted(tokens), dtype=np.int64)
            else:
                parts = [self._union_for_levels((level,)) for level in levels]
                union = parts[0]
                for part in parts[1:]:
                    union = np.union1d(union, part)
            union.setflags(write=False)
            self._level_unions[levels] = union
        return union

    def allowed_token_ids(self, prefixes: list[tuple[int, ...]]) -> SparseCandidates:
        """Per-row legal continuations plus the memoized candidate union.

        The sparse counterpart of :meth:`allowed_token_mask`: instead of a
        ``(rows, vocab_size)`` mask it returns the (tiny) union of
        candidate ids for the trie levels the prefixes sit at, and a
        ``(rows, len(union))`` mask in union space.  Per-(levels, prefix)
        rows are cached, so a steady-state decode step pays dictionary
        lookups and one stack — no vocabulary-sized work at all.
        """
        prefixes = [tuple(int(t) for t in p) for p in prefixes]
        levels = tuple(sorted({len(p) for p in prefixes}))
        union = self._union_for_levels(levels)
        per_row: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        for prefix in prefixes:
            allowed = self._allowed_cache.get(prefix, _EMPTY)
            per_row.append(allowed)
            key = (levels, prefix)
            row = self._union_rows.get(key)
            if row is None:
                row = np.zeros(union.shape[0], dtype=bool)
                if allowed.size:
                    row[np.searchsorted(union, allowed)] = True
                row.setflags(write=False)
                self._union_rows[key] = row
            rows.append(row)
        mask = np.stack(rows, axis=0)
        return SparseCandidates(per_row=per_row, union=union, mask=mask)

    def item_at(self, sequence: tuple[int, ...]) -> int:
        """The item id stored at a complete index sequence."""
        sequence = tuple(int(t) for t in sequence)
        try:
            return self._leaf_to_item[sequence]
        except KeyError:
            raise KeyError(f"no item with index sequence {sequence}") from None

    def contains_prefix(self, prefix: tuple[int, ...]) -> bool:
        prefix = tuple(int(t) for t in prefix)
        if len(prefix) == self.num_levels:
            return prefix in self._leaf_to_item
        return prefix in self._children or prefix == ()

    def items_under_prefix(self, prefix: tuple[int, ...]) -> list[int]:
        """All item ids whose index starts with ``prefix``."""
        prefix = tuple(int(t) for t in prefix)
        return [
            item for seq, item in self._leaf_to_item.items() if seq[: len(prefix)] == prefix
        ]

    @property
    def num_items(self) -> int:
        return len(self._leaf_to_item)

    def all_sequences(self) -> dict[int, tuple[int, ...]]:
        """item_id -> token sequence (a copy)."""
        return {item: seq for seq, item in self._leaf_to_item.items()}

    def subtrie(self, item_ids: "Sequence[int]") -> "IndexTrie":
        """A new trie over the given items' sequences only (candidate narrowing).

        The retrieval tier hands the decoder a candidate set; a subtrie
        built from exactly those items is the *selection* constraint of a
        narrowed decode (see ``repro.llm.decode_prefill``'s ``narrow``
        parameter — scoring still renormalises over this full trie, so
        narrowing never changes how the surviving candidates rank).  The
        subtrie is independent of its parent: mutating either afterwards
        does not affect the other.  Raises ``KeyError`` for ids not in the
        trie and ``ValueError`` for an empty candidate set.
        """
        sequences: dict[int, tuple[int, ...]] = {}
        item_to_seq = {item: seq for seq, item in self._leaf_to_item.items()}
        for item_id in item_ids:
            item_id = int(item_id)
            if item_id in sequences:
                continue
            try:
                sequences[item_id] = item_to_seq[item_id]
            except KeyError:
                raise KeyError(f"item {item_id} has no index sequence in this trie") from None
        if not sequences:
            raise ValueError("cannot build a subtrie from no items")
        return IndexTrie(sequences)
