"""Prefix trie over item-index token sequences.

Built from the learned item indices, the trie drives constrained beam
search: at each decoding level only tokens that extend some *real* item's
index are allowed (paper Sec. III-D2), so generation can never produce an
out-of-catalog item.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexTrie"]


class IndexTrie:
    """Maps token-id prefixes to allowed continuations and leaf item ids."""

    def __init__(self, sequences: dict[int, tuple[int, ...]]):
        """Build from ``{item_id: (token_id, token_id, ...)}``.

        Every sequence must have the same length and sequences must be
        unique (one leaf = one item) — the uniqueness the USM step provides.
        """
        if not sequences:
            raise ValueError("cannot build a trie from no sequences")
        lengths = {len(seq) for seq in sequences.values()}
        if len(lengths) != 1:
            raise ValueError(f"all index sequences must share a length: {lengths}")
        self.num_levels = lengths.pop()
        if self.num_levels == 0:
            raise ValueError("index sequences must be non-empty")

        self._children: dict[tuple[int, ...], set[int]] = {}
        self._leaf_to_item: dict[tuple[int, ...], int] = {}
        for item_id, seq in sequences.items():
            seq = tuple(int(t) for t in seq)
            if seq in self._leaf_to_item:
                other = self._leaf_to_item[seq]
                raise ValueError(
                    f"duplicate index sequence {seq} for items {other} and {item_id}"
                )
            self._leaf_to_item[seq] = item_id
            for depth in range(self.num_levels):
                prefix = seq[:depth]
                self._children.setdefault(prefix, set()).add(seq[depth])

        self._allowed_cache: dict[tuple[int, ...], np.ndarray] = {
            prefix: np.array(sorted(children), dtype=np.int64)
            for prefix, children in self._children.items()
        }
        self._mask_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._mask_vocab_size = 0
        self.max_token_id = max(
            token for children in self._children.values() for token in children
        )

    # ------------------------------------------------------------------
    def allowed_tokens(self, prefix: tuple[int, ...]) -> np.ndarray:
        """Token ids that legally extend ``prefix`` (empty array if none)."""
        prefix = tuple(int(t) for t in prefix)
        return self._allowed_cache.get(prefix, np.empty(0, dtype=np.int64))

    def allowed_token_mask(self, prefixes: list[tuple[int, ...]],
                           vocab_size: int) -> np.ndarray:
        """Boolean ``(len(prefixes), vocab_size)`` constraint mask.

        Row ``i`` is True exactly at the token ids that legally extend
        ``prefixes[i]`` (all-False for unknown/illegal prefixes).  Per-prefix
        rows are cached, so constrained decoding pays one dictionary lookup
        and one stack per step instead of per-hypothesis Python loops.
        """
        if vocab_size <= self.max_token_id:
            raise ValueError(
                f"vocab_size {vocab_size} too small for trie tokens "
                f"(max id {self.max_token_id})"
            )
        if vocab_size != self._mask_vocab_size:
            self._mask_cache = {}
            self._mask_vocab_size = vocab_size
        rows = []
        for prefix in prefixes:
            prefix = tuple(int(t) for t in prefix)
            row = self._mask_cache.get(prefix)
            if row is None:
                row = np.zeros(vocab_size, dtype=bool)
                allowed = self._allowed_cache.get(prefix)
                if allowed is not None:
                    row[allowed] = True
                self._mask_cache[prefix] = row
            rows.append(row)
        return np.stack(rows, axis=0)

    def item_at(self, sequence: tuple[int, ...]) -> int:
        """The item id stored at a complete index sequence."""
        sequence = tuple(int(t) for t in sequence)
        try:
            return self._leaf_to_item[sequence]
        except KeyError:
            raise KeyError(f"no item with index sequence {sequence}") from None

    def contains_prefix(self, prefix: tuple[int, ...]) -> bool:
        prefix = tuple(int(t) for t in prefix)
        if len(prefix) == self.num_levels:
            return prefix in self._leaf_to_item
        return prefix in self._children or prefix == ()

    def items_under_prefix(self, prefix: tuple[int, ...]) -> list[int]:
        """All item ids whose index starts with ``prefix``."""
        prefix = tuple(int(t) for t in prefix)
        return [
            item for seq, item in self._leaf_to_item.items()
            if seq[:len(prefix)] == prefix
        ]

    @property
    def num_items(self) -> int:
        return len(self._leaf_to_item)

    def all_sequences(self) -> dict[int, tuple[int, ...]]:
        """item_id -> token sequence (a copy)."""
        return {item: seq for seq, item in self._leaf_to_item.items()}
