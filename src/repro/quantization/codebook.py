"""Codebook utilities: k-means initialisation and nearest-code search."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "nearest_code", "pairwise_sq_distances"]


def pairwise_sq_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances ``(n, k)`` between rows of x and centers."""
    x_sq = (x**2).sum(axis=1, keepdims=True)
    c_sq = (centers**2).sum(axis=1)[None, :]
    cross = x @ centers.T
    dist = x_sq + c_sq - 2.0 * cross
    np.maximum(dist, 0.0, out=dist)
    return dist


def nearest_code(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center per row (Eq. 1 of the paper)."""
    return pairwise_sq_distances(x, centers).argmin(axis=1)


def kmeans(x: np.ndarray, k: int, rng: np.random.Generator, num_iters: int = 20) -> np.ndarray:
    """Lloyd's k-means returning ``(k, dim)`` centers.

    Used to initialise each RQ-VAE codebook level from the first batch of
    residuals (the standard trick to avoid dead codes, also used by TIGER).
    Empty clusters are re-seeded from random data points.
    """
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot run kmeans on empty data")
    if k <= 0:
        raise ValueError("k must be positive")
    # Sample initial centers (with replacement when data is scarce).
    replace = n < k
    centers = x[rng.choice(n, size=k, replace=replace)].astype(np.float64).copy()
    if replace:
        centers += rng.standard_normal(centers.shape) * 1e-4
    for _ in range(num_iters):
        labels = nearest_code(x, centers)
        new_centers = centers.copy()
        for cluster in range(k):
            members = x[labels == cluster]
            if len(members) > 0:
                new_centers[cluster] = members.mean(axis=0)
            else:
                new_centers[cluster] = x[rng.integers(n)] + (
                    rng.standard_normal(x.shape[1]) * 1e-4
                )
        shift = np.abs(new_centers - centers).max()
        centers = new_centers
        if shift < 1e-7:
            break
    return centers.astype(np.float32)
