"""Item index construction and conflict resolution (paper Sec. III-B2).

After the RQ-VAE assigns greedy codes, items may collide (identical full
code tuples).  Three strategies are provided:

* ``"usm"`` — the paper's uniform semantic mapping: for each group of
  conflicting items, redistribute the *last-level* codewords by solving the
  optimal-transport problem (Eq. 6), avoiding codes already taken under the
  same prefix.  No extra level is added; indices stay semantic.
* ``"extra_level"`` — the TIGER / P5-CID fallback the paper argues against:
  append a supplementary level that enumerates duplicates.
* ``"raw"`` — keep conflicts (only for analysis; a trie cannot be built).

The resulting :class:`ItemIndexSet` renders codes as index tokens
(``<a_12><b_7><c_3><d_9>``), registers them with a tokenizer, and builds
the decoding trie.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..text import WordTokenizer
from .codebook import pairwise_sq_distances
from .rqvae import RQVAE
from .sinkhorn import uniform_assign
from .trie import IndexTrie

__all__ = [
    "IndexConflictError",
    "ItemIndexSet",
    "build_semantic_indices",
    "code_token_strings",
    "resolve_conflicts_usm",
    "resolve_conflicts_extra_level",
    "count_conflicts",
]

_LEVEL_LETTERS = "abcdefgh"


class IndexConflictError(RuntimeError):
    """Raised when conflicts cannot be resolved under the chosen strategy."""


def code_token_strings(codes) -> tuple[str, ...]:
    """Index-token strings for one code tuple, e.g. ``('<a_5>', '<b_2>', ...)``.

    The rendering :class:`ItemIndexSet` uses per item, exposed for codes
    that are not (yet) in an index set — the live catalog renders a newly
    ingested item's codes with it before the token ids enter the trie.
    """
    return tuple(f"<{_LEVEL_LETTERS[level]}_{int(code)}>" for level, code in enumerate(codes))


@dataclass
class ItemIndexSet:
    """Per-item discrete indices plus the token-space description.

    Attributes
    ----------
    codes:
        ``(num_items, num_levels)`` integer codewords.
    level_sizes:
        Token-space size per level (number of distinct possible codes, not
        merely the used ones) — determines how many tokens get registered.
    """

    codes: np.ndarray
    level_sizes: list[int]

    def __post_init__(self):
        self.codes = np.asarray(self.codes, dtype=np.int64)
        if self.codes.ndim != 2:
            raise ValueError("codes must be (num_items, num_levels)")
        if self.codes.shape[1] != len(self.level_sizes):
            raise ValueError("level_sizes must match number of levels")
        for level, size in enumerate(self.level_sizes):
            level_max = self.codes[:, level].max(initial=-1)
            if level_max >= size:
                raise ValueError(
                    f"code {level_max} out of range for level {level} "
                    f"(size {size})"
                )

    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        return self.codes.shape[0]

    @property
    def num_levels(self) -> int:
        return self.codes.shape[1]

    def is_unique(self) -> bool:
        """True when no two items share a full index tuple."""
        return len({tuple(row) for row in self.codes}) == self.num_items

    # ------------------------------------------------------------------
    def token_strings(self, item_id: int) -> tuple[str, ...]:
        """Index tokens for one item, e.g. ``('<a_5>', '<b_2>', ...)``."""
        return code_token_strings(self.codes[item_id])

    def index_text(self, item_id: int) -> str:
        """The concatenated token string used inside instructions."""
        return "".join(self.token_strings(item_id))

    def all_token_strings(self) -> list[str]:
        """Every possible index token, level-major (for vocab registration)."""
        tokens = []
        for level, size in enumerate(self.level_sizes):
            letter = _LEVEL_LETTERS[level]
            tokens.extend(f"<{letter}_{code}>" for code in range(size))
        return tokens

    # ------------------------------------------------------------------
    def register(self, tokenizer: WordTokenizer) -> None:
        """Append all index tokens to the tokenizer's vocabulary."""
        tokenizer.register_index_tokens(self.all_token_strings())

    def token_ids(self, item_id: int, tokenizer: WordTokenizer) -> tuple[int, ...]:
        return tuple(tokenizer.vocab.token_to_id(t) for t in self.token_strings(item_id))

    def build_trie(self, tokenizer: WordTokenizer) -> IndexTrie:
        """Decoding trie over token ids (requires unique indices)."""
        sequences = {
            item: self.token_ids(item, tokenizer)
            for item in range(self.num_items)
        }
        return IndexTrie(sequences)


# ----------------------------------------------------------------------
def count_conflicts(codes: np.ndarray) -> int:
    """Number of items involved in a full-tuple collision."""
    groups: dict[tuple, int] = defaultdict(int)
    for row in codes:
        groups[tuple(row)] += 1
    return sum(count for count in groups.values() if count > 1)


def resolve_conflicts_usm(
    codes: np.ndarray,
    level_residuals: np.ndarray,
    codebooks: list[np.ndarray],
    epsilon: float = 0.05,
    max_passes: int = 10,
) -> np.ndarray:
    """Uniform-semantic-mapping conflict resolution (Eq. 6, stage two).

    For every prefix bucket (identical codes at levels ``0..H-2``) whose
    items collide at the last level, the colliding items' last codewords
    are reassigned by capacity-1 optimal transport over the codes not
    already taken in that bucket (non-conflicting items are untouched).

    When a bucket holds more items than the last codebook has codes —
    which only happens with very small codebooks, where deep RQ levels
    tend to collapse — the farthest overflow items are *spilled*: their
    level ``H-1`` code is moved to the next-nearest center and resolution
    re-runs.  This keeps the reassignment semantic (nearby codes first)
    while guaranteeing uniqueness.
    """
    codes = codes.copy()
    num_levels = codes.shape[1]
    last_codebook = codebooks[-1]
    num_codes = last_codebook.shape[0]
    last_residuals = level_residuals[:, -1, :].copy()
    spill_rank = defaultdict(int)  # item -> how many spills so far

    for _ in range(max_passes):
        buckets: dict[tuple, list[int]] = defaultdict(list)
        for item, row in enumerate(codes):
            buckets[tuple(row[:-1])].append(item)
        any_conflict = False
        for prefix, items in buckets.items():
            last = codes[items, -1]
            values, counts = np.unique(last, return_counts=True)
            if (counts <= 1).all():
                continue
            any_conflict = True
            conflicted_codes = set(values[counts > 1].tolist())
            keep = [i for i in items if codes[i, -1] not in conflicted_codes]
            movers = [i for i in items if codes[i, -1] in conflicted_codes]
            taken = {int(codes[i, -1]) for i in keep}
            free_codes = np.array(
                [c for c in range(num_codes) if c not in taken],
                dtype=np.int64,
            )
            overflow: list[int] = []
            if len(movers) > len(free_codes):
                if num_levels < 2:
                    raise IndexConflictError(
                        f"{len(movers)} items conflict with only "
                        f"{len(free_codes)} free codes and no higher level "
                        "to spill to; increase codebook_size"
                    )
                # Keep the movers closest to their current code; spill the rest.
                current = last_codebook[codes[movers, -1]]
                distance = ((last_residuals[movers] - current) ** 2).sum(axis=1)
                order = np.argsort(distance)
                fitted = [movers[i] for i in order[:len(free_codes)]]
                overflow = [movers[i] for i in order[len(free_codes):]]
                movers = fitted
            if movers:
                cost = pairwise_sq_distances(last_residuals[movers], last_codebook[free_codes])
                assignment = uniform_assign(cost, capacity=1, epsilon=epsilon)
                for mover, col in zip(movers, assignment):
                    codes[mover, -1] = free_codes[col]
            for item in overflow:
                _spill_item(item, codes, level_residuals, last_residuals,
                            codebooks, spill_rank)
        if not any_conflict:
            return codes

    remaining = count_conflicts(codes)
    if remaining:
        raise IndexConflictError(
            f"{remaining} items still conflict after {max_passes} passes; "
            "increase codebook_size or num_levels"
        )
    return codes


def _spill_item(item: int, codes: np.ndarray, level_residuals: np.ndarray,
                last_residuals: np.ndarray, codebooks: list[np.ndarray],
                spill_rank: dict[int, int]) -> None:
    """Move ``item`` to its next-nearest level ``H-1`` code.

    Each successive spill of the same item picks a progressively farther
    center (rank 2nd, 3rd, ...), which guarantees termination.
    """
    parent_level = codes.shape[1] - 2
    parent_book = codebooks[parent_level]
    parent_residual = level_residuals[item, parent_level][None, :]
    distances = pairwise_sq_distances(parent_residual, parent_book)[0]
    ranked = np.argsort(distances)
    spill_rank[item] += 1
    rank = min(spill_rank[item], len(ranked) - 1)
    new_parent = int(ranked[rank])
    codes[item, parent_level] = new_parent
    # Recompute the residual entering the last level and its greedy code.
    new_last_residual = level_residuals[item, parent_level] - parent_book[new_parent]
    last_residuals[item] = new_last_residual
    last_book = codebooks[-1]
    codes[item, -1] = int(
        pairwise_sq_distances(new_last_residual[None, :], last_book)[0].argmin()
    )


def resolve_conflicts_extra_level(codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Append a disambiguation level enumerating duplicates (TIGER-style).

    Returns the ``(N, H+1)`` codes plus the extra level's token-space size.
    """
    groups: dict[tuple, int] = defaultdict(int)
    extra = np.zeros(codes.shape[0], dtype=np.int64)
    for item, row in enumerate(codes):
        key = tuple(row)
        extra[item] = groups[key]
        groups[key] += 1
    extra_size = int(extra.max()) + 1
    return np.concatenate([codes, extra[:, None]], axis=1), extra_size


def build_semantic_indices(
    rqvae: RQVAE, embeddings: np.ndarray, strategy: str = "usm", epsilon: float = 0.05
) -> ItemIndexSet:
    """Quantise ``embeddings`` and resolve conflicts with ``strategy``."""
    result = rqvae.quantize(embeddings)
    codebook_size = rqvae.config.codebook_size
    num_levels = rqvae.config.num_levels
    if strategy == "usm":
        codebooks = [book.vectors.data for book in rqvae.codebooks]
        codes = resolve_conflicts_usm(
            result.codes, result.level_residuals, codebooks, epsilon=epsilon,
        )
        return ItemIndexSet(codes, [codebook_size] * num_levels)
    if strategy == "extra_level":
        codes, extra_size = resolve_conflicts_extra_level(result.codes)
        return ItemIndexSet(codes, [codebook_size] * num_levels + [extra_size])
    if strategy == "raw":
        return ItemIndexSet(result.codes, [codebook_size] * num_levels)
    raise ValueError(f"unknown strategy {strategy!r}")
