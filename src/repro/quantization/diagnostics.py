"""Codebook-utilisation diagnostics for the RQ-VAE.

The uniform semantic mapping's stated objective is that "item semantics
are uniformly distributed across different codebook embeddings at the last
index level" (Sec. III-B2).  These metrics make that claim measurable:
per-level code-usage entropy, perplexity (effective number of codes) and
dead-code counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LevelUsage", "codebook_usage"]


@dataclass(frozen=True)
class LevelUsage:
    """Usage statistics of one quantisation level."""

    level: int
    codebook_size: int
    used_codes: int
    entropy: float
    perplexity: float

    @property
    def dead_codes(self) -> int:
        return self.codebook_size - self.used_codes

    @property
    def normalized_entropy(self) -> float:
        """Entropy / log(K): 1.0 means perfectly uniform usage."""
        if self.codebook_size <= 1:
            return 1.0
        return self.entropy / np.log(self.codebook_size)


def codebook_usage(codes: np.ndarray, level_sizes: list[int]) -> list[LevelUsage]:
    """Per-level usage statistics of an index assignment.

    Parameters
    ----------
    codes:
        ``(num_items, num_levels)`` codeword matrix.
    level_sizes:
        Codebook size per level.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ValueError("codes must be 2-D")
    if codes.shape[1] != len(level_sizes):
        raise ValueError("level_sizes must match the number of levels")
    usages = []
    for level, size in enumerate(level_sizes):
        counts = np.bincount(codes[:, level], minlength=size).astype(float)
        total = counts.sum()
        probs = counts[counts > 0] / total
        entropy = float(-(probs * np.log(probs)).sum())
        usages.append(LevelUsage(
            level=level,
            codebook_size=size,
            used_codes=int((counts > 0).sum()),
            entropy=entropy,
            perplexity=float(np.exp(entropy)),
        ))
    return usages
