"""RQ-VAE training loop (paper Sec. IV-A4: AdamW, lr 1e-3, batch 1024)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import iterate_minibatches
from ..tensor import AdamW, Tensor
from ..utils.logging import get_logger
from .rqvae import RQVAE

__all__ = ["RQVAETrainerConfig", "RQVAETrainer"]

logger = get_logger(__name__)


@dataclass
class RQVAETrainerConfig:
    epochs: int = 200
    batch_size: int = 1024
    lr: float = 1e-3
    weight_decay: float = 0.01
    kmeans_init: bool = True
    seed: int = 0
    log_every: int = 50


@dataclass
class RQVAETrainer:
    """Fits an RQ-VAE on a fixed matrix of item text embeddings."""

    model: RQVAE
    config: RQVAETrainerConfig = field(default_factory=RQVAETrainerConfig)

    def fit(self, embeddings: np.ndarray) -> list[dict[str, float]]:
        """Train and return per-epoch loss history."""
        embeddings = np.asarray(embeddings, dtype=np.float32)
        if embeddings.ndim != 2:
            raise ValueError("embeddings must be (num_items, dim)")
        if embeddings.shape[1] != self.model.config.input_dim:
            raise ValueError(
                f"embedding dim {embeddings.shape[1]} != RQ-VAE input_dim "
                f"{self.model.config.input_dim}"
            )
        rng = np.random.default_rng(self.config.seed)
        if self.config.kmeans_init:
            self.model.init_codebooks_kmeans(embeddings, rng=rng)
        optimizer = AdamW(
            self.model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        history: list[dict[str, float]] = []
        for epoch in range(self.config.epochs):
            epoch_losses = {"recon": 0.0, "rq": 0.0, "total": 0.0}
            batches = 0
            for batch_idx in iterate_minibatches(
                len(embeddings), self.config.batch_size, rng=rng
            ):
                batch = Tensor(embeddings[batch_idx])
                optimizer.zero_grad()
                total, parts, _ = self.model(batch)
                total.backward()
                optimizer.step()
                for key in epoch_losses:
                    epoch_losses[key] += parts[key].item()
                batches += 1
            record = {key: value / max(batches, 1) for key, value in epoch_losses.items()}
            history.append(record)
            if (epoch + 1) % self.config.log_every == 0:
                logger.info("rqvae epoch %d: total=%.4f recon=%.4f rq=%.4f",
                            epoch + 1, record["total"], record["recon"],
                            record["rq"])
        return history
