"""Sinkhorn-Knopp optimal transport for uniform semantic mapping.

The paper (Eq. 6) casts conflict-free last-level code assignment as an
optimal transport problem: map residual vectors to codebook entries so
that every residual gets exactly one code and the codes are used uniformly
(each code receives ``|B| / K`` residuals).  The entropic relaxation is
solved with the Sinkhorn-Knopp algorithm (Cuturi 2013), then rounded to a
hard, capacity-respecting assignment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sinkhorn_knopp", "uniform_assign"]


def sinkhorn_knopp(
    cost: np.ndarray, epsilon: float = 0.05, num_iters: int = 100, tol: float = 1e-6
) -> np.ndarray:
    """Solve the entropic OT problem with uniform marginals.

    Parameters
    ----------
    cost:
        ``(n, k)`` non-negative transport costs (squared distances).
    epsilon:
        Entropic regularisation strength (smaller = closer to hard OT).
    num_iters:
        Maximum row/column scaling iterations.

    Returns
    -------
    ``(n, k)`` transport plan ``Q`` with rows summing to ``1/n`` and columns
    to ``1/k`` (up to ``tol``).
    """
    if cost.ndim != 2:
        raise ValueError("cost must be 2-D")
    n, k = cost.shape
    if n == 0 or k == 0:
        raise ValueError("cost must be non-empty")
    # Log-domain scaling for numerical stability.
    log_q = -cost / max(epsilon, 1e-12)
    log_q -= log_q.max()
    log_row_target = -np.log(n)
    log_col_target = -np.log(k)
    for _ in range(num_iters):
        # Normalise columns to 1/k.
        log_col = _logsumexp(log_q, axis=0)
        log_q += log_col_target - log_col[None, :]
        # Normalise rows to 1/n.
        log_row = _logsumexp(log_q, axis=1)
        log_q += log_row_target - log_row[:, None]
        col_err = np.abs(np.exp(_logsumexp(log_q, axis=0)) - 1.0 / k).max()
        if col_err < tol:
            break
    return np.exp(log_q)


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    m = a.max(axis=axis, keepdims=True)
    out = np.log(np.exp(a - m).sum(axis=axis)) + np.squeeze(m, axis=axis)
    return out


def uniform_assign(
    cost: np.ndarray, capacity: int | None = None, epsilon: float = 0.05, num_iters: int = 100
) -> np.ndarray:
    """Hard assignment of each row to one column with per-column capacity.

    Runs Sinkhorn to get soft transport probabilities, then rounds greedily
    in order of decreasing confidence while respecting ``capacity`` (default
    ``ceil(n / k)`` — the uniform quota of Eq. 6).

    Returns an ``(n,)`` integer array of column assignments.
    """
    n, k = cost.shape
    if capacity is None:
        capacity = int(np.ceil(n / k))
    if capacity * k < n:
        raise ValueError(f"capacity {capacity} x {k} columns < {n} rows")
    plan = sinkhorn_knopp(cost, epsilon=epsilon, num_iters=num_iters)

    assignment = np.full(n, -1, dtype=np.int64)
    remaining = np.full(k, capacity, dtype=np.int64)
    # Greedy rounding: visit (row, col) pairs by decreasing plan weight.
    order = np.argsort(-plan, axis=None)
    assigned = 0
    for flat in order:
        row, col = divmod(int(flat), k)
        if assignment[row] != -1 or remaining[col] == 0:
            continue
        assignment[row] = col
        remaining[col] -= 1
        assigned += 1
        if assigned == n:
            break
    return assignment
