"""Residual-Quantized Variational AutoEncoder (paper Sec. III-B, Eq. 1-5).

The RQ-VAE maps LLM text embeddings to ``H`` discrete codewords by
recursively quantising residuals from coarse to fine.  Training follows
Algorithm 1: levels ``1..H-1`` use nearest-neighbour assignment (Eq. 1);
the last level optionally uses the Sinkhorn-based uniform semantic mapping
(Eq. 6) so that item semantics spread uniformly over the final codebook.

Losses (Eq. 3-5): reconstruction plus the per-level RQ loss with
stop-gradients on alternating sides and commitment coefficient ``beta``.
The decoder input uses the straight-through estimator, so encoder gradients
flow through the quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor import MLP, Module, ModuleList, Parameter, Tensor, no_grad
from ..tensor import functional as F
from .codebook import kmeans, nearest_code, pairwise_sq_distances
from .sinkhorn import sinkhorn_knopp

__all__ = ["RQVAEConfig", "RQVAE", "Codebook", "QuantizationResult"]


@dataclass
class RQVAEConfig:
    """Hyperparameters (paper defaults: 4 levels x 256 codes x dim 32)."""

    input_dim: int = 64
    latent_dim: int = 32
    hidden_dims: tuple[int, ...] = (128, 64)
    num_levels: int = 4
    codebook_size: int = 32
    beta: float = 0.25
    usm_last_level: bool = True
    sinkhorn_epsilon: float = 0.05
    sinkhorn_iters: int = 50
    seed: int = 0

    def validate(self) -> None:
        if self.num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        if self.codebook_size < 2:
            raise ValueError("codebook_size must be >= 2")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")


@dataclass
class QuantizationResult:
    """Output of a quantisation pass over a batch of embeddings."""

    codes: np.ndarray            # (N, H) integer codewords
    level_residuals: np.ndarray  # (N, H, latent) residual entering each level
    quantized: np.ndarray        # (N, latent_dim) sum of codebook vectors

    @property
    def last_residuals(self) -> np.ndarray:
        """Residuals entering the last level (the USM input)."""
        return self.level_residuals[:, -1, :]


class Codebook(Module):
    """One level of learnable cluster centers ``{v_k}``."""

    def __init__(self, size: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.vectors = Parameter(
            (rng.standard_normal((size, dim)) * 0.1).astype(np.float32)
        )

    @property
    def size(self) -> int:
        return self.vectors.shape[0]


class RQVAE(Module):
    """MLP encoder/decoder around a multi-level residual quantiser."""

    def __init__(self, config: RQVAEConfig):
        super().__init__()
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        enc_dims = [config.input_dim, *config.hidden_dims, config.latent_dim]
        dec_dims = [config.latent_dim, *reversed(config.hidden_dims),
                    config.input_dim]
        self.encoder = MLP(enc_dims, rng=rng)
        self.decoder = MLP(dec_dims, rng=rng)
        self.codebooks = ModuleList([
            Codebook(config.codebook_size, config.latent_dim, rng)
            for _ in range(config.num_levels)
        ])

    # ------------------------------------------------------------------
    def init_codebooks_kmeans(
        self,
        embeddings: np.ndarray,
        rng: np.random.Generator | None = None,
        num_iters: int = 20,
    ) -> None:
        """K-means-initialise every level from the data's residuals."""
        rng = rng or np.random.default_rng(self.config.seed + 7)
        with no_grad():
            residual = self.encoder(Tensor(embeddings)).data.copy()
        for book in self.codebooks:
            centers = kmeans(residual, book.size, rng, num_iters=num_iters)
            book.vectors.data = centers
            codes = nearest_code(residual, centers)
            residual = residual - centers[codes]

    # ------------------------------------------------------------------
    def _assign_level(
        self, residual_data: np.ndarray, level: int, training_usm: bool
    ) -> np.ndarray:
        """Codeword selection for one level (Eq. 1, or Eq. 6 on the last)."""
        book = self.codebooks[level].vectors.data
        dist = pairwise_sq_distances(residual_data, book)
        is_last = level == self.config.num_levels - 1
        if training_usm and is_last and residual_data.shape[0] > 1:
            plan = sinkhorn_knopp(
                dist, epsilon=self.config.sinkhorn_epsilon, num_iters=self.config.sinkhorn_iters
            )
            return plan.argmax(axis=1)
        return dist.argmin(axis=1)

    def forward(self, embeddings: Tensor) -> tuple[Tensor, dict[str, Tensor], np.ndarray]:
        """Training pass: returns (total loss, loss parts, codes)."""
        beta = self.config.beta
        z = self.encoder(embeddings)
        residual = z
        quantized_data = np.zeros_like(z.data)
        rq_loss: Tensor | None = None
        codes = []
        for level in range(self.config.num_levels):
            code = self._assign_level(
                residual.data, level, training_usm=self.config.usm_last_level
            )
            codes.append(code)
            vectors = F.embedding(self.codebooks[level].vectors, code)
            # ||sg[r] - v||^2: moves codebook vectors toward residuals.
            codebook_term = ((Tensor(residual.data) - vectors) ** 2).sum(axis=1).mean()
            # beta * ||r - sg[v]||^2: commitment, moves encoder toward codes.
            commit_term = ((residual - Tensor(vectors.data)) ** 2).sum(axis=1).mean()
            level_loss = codebook_term + commit_term * beta
            rq_loss = level_loss if rq_loss is None else rq_loss + level_loss
            quantized_data += vectors.data
            residual = residual - Tensor(vectors.data)
        # Straight-through: decoder sees quantised values, encoder gets grads.
        z_q = z + Tensor(quantized_data - z.data)
        recon = self.decoder(z_q)
        recon_loss = ((embeddings - recon) ** 2).sum(axis=1).mean()
        total = recon_loss + rq_loss
        parts = {"recon": recon_loss, "rq": rq_loss, "total": total}
        return total, parts, np.stack(codes, axis=1)

    # ------------------------------------------------------------------
    def quantize(self, embeddings: np.ndarray) -> QuantizationResult:
        """Inference-time greedy quantisation (stage one of Sec. III-B2)."""
        with no_grad():
            residual = self.encoder(Tensor(np.asarray(embeddings, dtype=np.float32))).data
        residual = residual.copy()
        quantized = np.zeros_like(residual)
        codes = []
        level_residuals = []
        for level in range(self.config.num_levels):
            level_residuals.append(residual.copy())
            book = self.codebooks[level].vectors.data
            code = nearest_code(residual, book)
            codes.append(code)
            vectors = book[code]
            quantized += vectors
            residual = residual - vectors
        return QuantizationResult(
            codes=np.stack(codes, axis=1),
            level_residuals=np.stack(level_residuals, axis=1),
            quantized=quantized,
        )

    def reconstruct(self, embeddings: np.ndarray) -> np.ndarray:
        """Decode the quantised representation back to embedding space."""
        result = self.quantize(embeddings)
        with no_grad():
            return self.decoder(Tensor(result.quantized)).data
