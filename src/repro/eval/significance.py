"""Paired bootstrap significance testing for ranking metrics.

Table III claims "LC-Rec consistently outperforms"; at reproduction scale
(hundreds of test users) metric gaps can be noise.  The paired bootstrap
resamples *users* and reports how often model A beats model B on the
resampled metric — the standard significance check for leave-one-out
recommendation evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BootstrapResult", "paired_bootstrap"]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison on one metric."""

    metric: str
    mean_a: float
    mean_b: float
    win_rate: float          # fraction of resamples where A > B
    num_resamples: int

    @property
    def significant(self) -> bool:
        """True when A wins in >= 95% of resamples."""
        return self.win_rate >= 0.95


def _per_user_scores(
    ranked_lists: Sequence[Sequence[int]], targets: Sequence[int], metric: str, k: int
) -> np.ndarray:
    scores = np.zeros(len(targets))
    for i, (ranked, target) in enumerate(zip(ranked_lists, targets)):
        window = list(ranked[:k])
        if target in window:
            if metric == "hr":
                scores[i] = 1.0
            elif metric == "ndcg":
                scores[i] = 1.0 / np.log2(window.index(target) + 2)
            else:
                raise ValueError(f"unknown metric {metric!r}")
    return scores


def paired_bootstrap(
    ranked_a: Sequence[Sequence[int]],
    ranked_b: Sequence[Sequence[int]],
    targets: Sequence[int],
    metric: str = "hr",
    k: int = 10,
    num_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Compare two models' rankings over the same users.

    Parameters
    ----------
    ranked_a, ranked_b:
        Per-user ranked item lists from the two models (aligned).
    metric:
        ``"hr"`` or ``"ndcg"``.
    """
    if len(ranked_a) != len(ranked_b) or len(ranked_a) != len(targets):
        raise ValueError("inputs must align per user")
    if not targets:
        raise ValueError("no users to compare")
    rng = rng or np.random.default_rng(0)
    scores_a = _per_user_scores(ranked_a, targets, metric, k)
    scores_b = _per_user_scores(ranked_b, targets, metric, k)
    n = len(targets)
    wins = 0
    for _ in range(num_resamples):
        sample = rng.integers(0, n, size=n)
        if scores_a[sample].mean() > scores_b[sample].mean():
            wins += 1
    return BootstrapResult(
        metric=f"{metric.upper()}@{k}",
        mean_a=float(scores_a.mean()),
        mean_b=float(scores_b.mean()),
        win_rate=wins / num_resamples,
        num_resamples=num_resamples,
    )
