"""Full-ranking evaluation over the entire item set (paper Sec. IV-A3).

Two model families are supported:

* **score models** (all traditional baselines) expose ``score_all`` which
  returns a score per item; ranking is a sort.
* **generative models** (LC-Rec, TIGER, P5-CID) expose a ``recommend``
  callable producing a ranked item list via constrained beam search.

No sampled negatives: ranking is always against all items, as the paper
stresses ("full ranking evaluation over the entire item set").
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from .metrics import MetricReport

__all__ = [
    "ScoreModel",
    "evaluate_score_model",
    "evaluate_generative_model",
    "evaluate_generative_model_batched",
    "rankings_from_scores",
]


class ScoreModel(Protocol):
    """Anything that can score all items for a batch of histories."""

    def score_all(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        """Return ``(num_histories, num_items)`` preference scores."""


def rankings_from_scores(scores: np.ndarray, top_k: int) -> list[list[int]]:
    """Top-``top_k`` item ids per row, best first."""
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D")
    k = min(top_k, scores.shape[1])
    top = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    rows = []
    for row_scores, row_top in zip(scores, top):
        order = row_top[np.argsort(-row_scores[row_top], kind="stable")]
        rows.append(order.tolist())
    return rows


def evaluate_score_model(
    model: ScoreModel,
    histories: Sequence[Sequence[int]],
    targets: Sequence[int],
    ks: tuple[int, ...] = (1, 5, 10),
    batch_size: int = 256,
) -> MetricReport:
    """Rank all items by model score and compute HR/NDCG."""
    top_k = max(ks)
    rankings: list[list[int]] = []
    for start in range(0, len(histories), batch_size):
        batch = histories[start:start + batch_size]
        scores = model.score_all(batch)
        rankings.extend(rankings_from_scores(scores, top_k))
    return MetricReport.from_rankings(rankings, list(targets), ks=ks)


def evaluate_generative_model(
    recommend: Callable[[Sequence[int]], list[int]],
    histories: Sequence[Sequence[int]],
    targets: Sequence[int],
    ks: tuple[int, ...] = (1, 5, 10),
) -> MetricReport:
    """Evaluate a beam-search recommender (one call per user)."""
    rankings = [list(recommend(list(history))) for history in histories]
    return MetricReport.from_rankings(rankings, list(targets), ks=ks)


def evaluate_generative_model_batched(
    recommend_batch: Callable[[Sequence[Sequence[int]]], list[list[int]]],
    histories: Sequence[Sequence[int]],
    targets: Sequence[int],
    ks: tuple[int, ...] = (1, 5, 10),
    batch_size: int = 16,
) -> MetricReport:
    """Evaluate a *batched* beam-search recommender.

    ``recommend_batch`` maps a list of histories to one ranking per history
    (e.g. ``LCRec.recommend_many``); users are decoded ``batch_size`` at a
    time so evaluation cost amortizes across the batch exactly as serving
    traffic does.  Metrics are identical to the per-user evaluator.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    rankings: list[list[int]] = []
    for start in range(0, len(histories), batch_size):
        chunk = [list(h) for h in histories[start:start + batch_size]]
        rankings.extend(list(r) for r in recommend_batch(chunk))
    return MetricReport.from_rankings(rankings, list(targets), ks=ks)
