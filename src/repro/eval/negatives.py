"""Semantically similar negative mining for Table V.

The paper probes *why* integrating both semantics helps by asking models to
choose between the ground-truth next item and a hard negative that is
similar to it in either language semantics (nearest neighbour in item
*text-embedding* space) or collaborative semantics (nearest neighbour in a
trained *SASRec* item-embedding space), plus a random-negative control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "NegativeSample", "mine_similar_negatives", "mine_random_negatives", "pairwise_choice_accuracy"
]


@dataclass(frozen=True)
class NegativeSample:
    """A (user, target, negative) evaluation triple."""

    user_id: int
    target: int
    negative: int


def _cosine_matrix(embeddings: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    normalised = embeddings / np.maximum(norms, 1e-12)
    return normalised @ normalised.T


def mine_similar_negatives(embeddings: np.ndarray, targets: Sequence[int]) -> list[NegativeSample]:
    """Most-cosine-similar other item per target, one triple per user."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    similarity = _cosine_matrix(embeddings)
    np.fill_diagonal(similarity, -np.inf)
    samples = []
    for user_id, target in enumerate(targets):
        negative = int(similarity[target].argmax())
        samples.append(NegativeSample(user_id=user_id, target=int(target), negative=negative))
    return samples


def mine_random_negatives(
    num_items: int, targets: Sequence[int], rng: np.random.Generator
) -> list[NegativeSample]:
    """Uniform random negative per user (never equal to the target)."""
    if num_items < 2:
        raise ValueError("need at least two items")
    samples = []
    for user_id, target in enumerate(targets):
        negative = int(rng.integers(num_items))
        while negative == target:
            negative = int(rng.integers(num_items))
        samples.append(NegativeSample(user_id=user_id, target=int(target), negative=negative))
    return samples


def pairwise_choice_accuracy(
    samples: Sequence[NegativeSample],
    histories: Sequence[Sequence[int]],
    choose: Callable[[Sequence[int], int, int], int],
) -> float:
    """Accuracy of ``choose(history, candidate_a, candidate_b)``.

    ``choose`` must return the chosen item id; candidate order is
    randomised implicitly by passing (target, negative) as given — callers
    should be order-invariant (both our scorers are).
    """
    if not samples:
        raise ValueError("no samples")
    correct = 0
    for sample in samples:
        history = histories[sample.user_id]
        chosen = choose(history, sample.target, sample.negative)
        if chosen == sample.target:
            correct += 1
    return correct / len(samples)
