"""Ranking metrics: top-K Hit Ratio and NDCG (paper Sec. IV-A3).

With leave-one-out evaluation there is exactly one relevant item per user,
so ``NDCG@K = 1 / log2(rank + 2)`` when the target appears at 0-based
``rank < K`` and 0 otherwise, and ``HR@K`` is the indicator of appearance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["hit_ratio_at_k", "ndcg_at_k", "rank_of_target", "MetricReport"]


def rank_of_target(ranked_items: list[int], target: int) -> int | None:
    """0-based rank of ``target`` in a ranked list, or None if absent."""
    try:
        return ranked_items.index(target)
    except ValueError:
        return None


def hit_ratio_at_k(ranked_lists: list[list[int]], targets: list[int], k: int) -> float:
    """Fraction of users whose target appears in the top ``k``."""
    _validate(ranked_lists, targets, k)
    hits = sum(
        1 for ranked, target in zip(ranked_lists, targets)
        if target in ranked[:k]
    )
    return hits / len(targets)


def ndcg_at_k(ranked_lists: list[list[int]], targets: list[int], k: int) -> float:
    """Mean NDCG@k with a single relevant item per user."""
    _validate(ranked_lists, targets, k)
    total = 0.0
    for ranked, target in zip(ranked_lists, targets):
        rank = rank_of_target(ranked[:k], target)
        if rank is not None:
            total += 1.0 / np.log2(rank + 2)
    return total / len(targets)


def _validate(ranked_lists, targets, k):
    if k < 1:
        raise ValueError("k must be positive")
    if len(ranked_lists) != len(targets):
        raise ValueError("ranked_lists and targets must align")
    if not targets:
        raise ValueError("no evaluation examples")


@dataclass
class MetricReport:
    """HR/NDCG values at the paper's cutoffs, with table rendering."""

    values: dict[str, float] = field(default_factory=dict)

    METRIC_ORDER = ("HR@1", "HR@5", "HR@10", "NDCG@5", "NDCG@10")

    @classmethod
    def from_rankings(
        cls, ranked_lists: list[list[int]], targets: list[int], ks: tuple[int, ...] = (1, 5, 10)
    ) -> "MetricReport":
        values: dict[str, float] = {}
        for k in ks:
            values[f"HR@{k}"] = hit_ratio_at_k(ranked_lists, targets, k)
            if k > 1:
                values[f"NDCG@{k}"] = ndcg_at_k(ranked_lists, targets, k)
        return cls(values)

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def row(self, label: str, metrics: tuple[str, ...] = METRIC_ORDER) -> str:
        """One formatted table row (4-decimal fixed point, like Table III)."""
        cells = " ".join(
            f"{self.values.get(metric, float('nan')):.4f}" for metric in metrics
        )
        return f"{label:<14} {cells}"

    @staticmethod
    def header(metrics: tuple[str, ...] = METRIC_ORDER) -> str:
        cells = " ".join(f"{m:>6}" for m in metrics)
        return f"{'model':<14} {cells}"
