"""Intention-based item retrieval evaluation (Fig. 3).

Each test user's intention text (the simulated GPT-3.5 output for the
held-out item) is used as a query; the model must retrieve the target item
from the whole catalog.  Works for any callable mapping query text to a
ranked item list (LC-Rec constrained generation, DSSM retrieval, or the
zero-shot LC-Rec variant).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..data.intentions import IntentionExample
from .metrics import MetricReport

__all__ = ["evaluate_intention_retrieval"]


def evaluate_intention_retrieval(
    retrieve: Callable[[str], list[int]],
    examples: Sequence[IntentionExample],
    ks: tuple[int, ...] = (5, 10),
) -> MetricReport:
    """HR/NDCG of retrieving each intention's target item."""
    if not examples:
        raise ValueError("no intention examples")
    rankings = [retrieve(example.text) for example in examples]
    targets = [example.item_id for example in examples]
    return MetricReport.from_rankings(rankings, targets, ks=ks)
