"""Evaluation protocols: full ranking, hard negatives, intention retrieval."""

from .extra_metrics import catalog_coverage, intra_list_diversity, mrr_at_k
from .popularity import (
    PopularityBucketReport,
    evaluate_by_popularity,
    item_popularity,
)
from .significance import BootstrapResult, paired_bootstrap
from .intention import evaluate_intention_retrieval
from .metrics import MetricReport, hit_ratio_at_k, ndcg_at_k, rank_of_target
from .negatives import (
    NegativeSample,
    mine_random_negatives,
    mine_similar_negatives,
    pairwise_choice_accuracy,
)
from .ranking import (
    evaluate_generative_model,
    evaluate_generative_model_batched,
    evaluate_score_model,
    rankings_from_scores,
)

__all__ = [
    "MetricReport",
    "hit_ratio_at_k",
    "ndcg_at_k",
    "rank_of_target",
    "evaluate_score_model",
    "evaluate_generative_model",
    "evaluate_generative_model_batched",
    "rankings_from_scores",
    "NegativeSample",
    "mine_similar_negatives",
    "mine_random_negatives",
    "pairwise_choice_accuracy",
    "evaluate_intention_retrieval",
    "mrr_at_k",
    "catalog_coverage",
    "intra_list_diversity",
    "paired_bootstrap",
    "BootstrapResult",
    "item_popularity",
    "evaluate_by_popularity",
    "PopularityBucketReport",
]
