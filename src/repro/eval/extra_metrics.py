"""Additional ranking metrics beyond the paper's HR/NDCG.

MRR, catalog coverage and intra-list diversity are the metrics most
commonly requested of a deployed generative recommender; they also
diagnose a known failure mode of beam search (mode collapse onto popular
items), which HR/NDCG can hide.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mrr_at_k", "catalog_coverage", "intra_list_diversity"]


def mrr_at_k(ranked_lists: Sequence[Sequence[int]], targets: Sequence[int], k: int) -> float:
    """Mean reciprocal rank truncated at ``k``."""
    if k < 1:
        raise ValueError("k must be positive")
    if len(ranked_lists) != len(targets) or not targets:
        raise ValueError("ranked_lists and targets must align and be non-empty")
    total = 0.0
    for ranked, target in zip(ranked_lists, targets):
        window = list(ranked[:k])
        if target in window:
            total += 1.0 / (window.index(target) + 1)
    return total / len(targets)


def catalog_coverage(ranked_lists: Sequence[Sequence[int]], num_items: int, k: int = 10) -> float:
    """Fraction of the catalog appearing in at least one top-``k`` list.

    Low coverage with decent HR signals popularity-collapsed beams.
    """
    if num_items < 1:
        raise ValueError("num_items must be positive")
    seen: set[int] = set()
    for ranked in ranked_lists:
        seen.update(ranked[:k])
    return len(seen) / num_items


def intra_list_diversity(
    ranked_lists: Sequence[Sequence[int]], item_categories: np.ndarray, k: int = 10
) -> float:
    """Mean pairwise category disagreement inside each top-``k`` list.

    1.0 = every recommended pair comes from different categories;
    0.0 = single-category lists.
    """
    categories = np.asarray(item_categories)
    scores = []
    for ranked in ranked_lists:
        window = list(ranked[:k])
        if len(window) < 2:
            continue
        cats = categories[window]
        pairs = disagreements = 0
        for i in range(len(cats)):
            for j in range(i + 1, len(cats)):
                pairs += 1
                if cats[i] != cats[j]:
                    disagreements += 1
        scores.append(disagreements / pairs)
    if not scores:
        raise ValueError("no list with at least two items")
    return float(np.mean(scores))
