"""Popularity-stratified evaluation (head vs tail items).

The paper motivates semantic indices partly by cold-start/OOV robustness
(Sec. III-B1): vanilla item IDs starve on rarely-seen items, while shared
semantic codewords let long-tail items borrow statistics from similar
popular ones.  This module buckets test users by their *target item's*
training popularity and reports HR per bucket, which makes that mechanism
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .metrics import hit_ratio_at_k

__all__ = ["PopularityBucketReport", "item_popularity", "evaluate_by_popularity"]


def item_popularity(train_sequences: Sequence[Sequence[int]],
                    num_items: int) -> np.ndarray:
    """Training interaction count per item."""
    counts = np.zeros(num_items, dtype=np.int64)
    for seq in train_sequences:
        for item in seq:
            counts[item] += 1
    return counts


@dataclass
class PopularityBucketReport:
    """HR@k per popularity bucket (ordered tail -> head)."""

    bucket_labels: list[str]
    bucket_sizes: list[int]
    hr_at_k: list[float]
    k: int

    def rows(self) -> list[str]:
        lines = [f"{'bucket':<12} {'users':>6} {'HR@' + str(self.k):>8}"]
        for label, size, hr in zip(self.bucket_labels, self.bucket_sizes, self.hr_at_k):
            lines.append(f"{label:<12} {size:>6} {hr:>8.4f}")
        return lines


def evaluate_by_popularity(
    ranked_lists: Sequence[Sequence[int]],
    targets: Sequence[int],
    popularity: np.ndarray,
    num_buckets: int = 3,
    k: int = 10,
) -> PopularityBucketReport:
    """Split users by target popularity quantile and compute HR per bucket."""
    if len(ranked_lists) != len(targets) or not targets:
        raise ValueError("ranked_lists and targets must align and be non-empty")
    if num_buckets < 2:
        raise ValueError("need at least two buckets")
    target_pop = popularity[np.asarray(targets)]
    quantiles = np.quantile(target_pop, np.linspace(0, 1, num_buckets + 1))
    labels, sizes, hrs = [], [], []
    for b in range(num_buckets):
        low, high = quantiles[b], quantiles[b + 1]
        if b == num_buckets - 1:
            mask = (target_pop >= low)
        else:
            mask = (target_pop >= low) & (target_pop < high)
        indices = np.flatnonzero(mask)
        labels.append("tail" if b == 0 else "head" if b == num_buckets - 1 else f"mid-{b}")
        sizes.append(len(indices))
        if len(indices) == 0:
            hrs.append(float("nan"))
            continue
        hrs.append(
            hit_ratio_at_k([ranked_lists[i] for i in indices], [targets[i] for i in indices], k)
        )
    return PopularityBucketReport(bucket_labels=labels, bucket_sizes=sizes, hr_at_k=hrs, k=k)
