"""Benchmark scale control.

Experiments honour the ``REPRO_SCALE`` environment variable:

* ``tiny``  — smoke-test scale (seconds per model; shapes may be noisy);
* ``small`` — default; minutes per table, paper-shaped results;
* ``full``  — the presets at full size (slowest, sharpest contrasts).

The paper's absolute dataset sizes (tens of thousands of users) are out of
reach for a pure-numpy substrate; DESIGN.md documents the scaling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..data import SequentialDataset, build_dataset, preset_config

__all__ = ["BenchScale", "bench_scale", "scaled_dataset"]


@dataclass(frozen=True)
class BenchScale:
    """Multipliers applied to datasets and training lengths."""

    name: str
    dataset_scale: float
    epoch_scale: float
    max_eval_users: int

    def epochs(self, base: int, minimum: int = 1) -> int:
        return max(int(round(base * self.epoch_scale)), minimum)


_SCALES = {
    "tiny": BenchScale("tiny", dataset_scale=0.15, epoch_scale=0.4, max_eval_users=60),
    "small": BenchScale("small", dataset_scale=0.3, epoch_scale=0.6, max_eval_users=100),
    "full": BenchScale("full", dataset_scale=1.0, epoch_scale=1.0, max_eval_users=100000),
}


def bench_scale(name: str | None = None) -> BenchScale:
    """Resolve a benchmark scale by name, programmatically or from the env.

    With ``name`` given (e.g. from an :class:`repro.experiments.ExperimentConfig`)
    that scale is returned directly — no environment variable involved, no
    monkeypatching required.  With ``name=None`` the ``REPRO_SCALE``
    environment variable selects the scale (default ``small``), which is
    what ad-hoc bench entry points use.
    """
    source = "scale name"
    if name is None:
        source = "REPRO_SCALE"
        name = os.environ.get("REPRO_SCALE", "small")
    name = name.lower()
    if name not in _SCALES:
        raise KeyError(f"{source} must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


def scaled_dataset(
    preset: str, scale: BenchScale | None = None, seed: int | None = None
) -> SequentialDataset:
    """Build a preset dataset at the active benchmark scale."""
    scale = scale or bench_scale()
    config = preset_config(preset, seed=seed, scale=scale.dataset_scale)
    return build_dataset(config)
