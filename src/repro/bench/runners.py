"""Model construction and train/eval runners shared by every benchmark."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..baselines import (
    BERT4Rec,
    BaselineTrainer,
    BaselineTrainerConfig,
    Caser,
    FDSA,
    FMLP,
    GRU4Rec,
    HGN,
    P5CID,
    P5CIDConfig,
    S3Rec,
    SASRec,
    TIGER,
    TIGERConfig,
)
from ..core import LCRec, LCRecConfig
from ..core.indexer import SemanticIndexerConfig
from ..core.tasks import ALL_TASKS, AlignmentTaskConfig
from ..data import SequentialDataset
from ..eval import (
    MetricReport,
    evaluate_generative_model,
    evaluate_generative_model_batched,
    evaluate_score_model,
)
from ..llm import LMConfig, PretrainConfig, TuningConfig
from ..quantization import RQVAEConfig, RQVAETrainerConfig
from .config import BenchScale, bench_scale

__all__ = [
    "baseline_model",
    "run_traditional_baseline",
    "run_generative_baseline",
    "lcrec_config_for",
    "build_lcrec_model",
    "evaluate_recommender",
    "TRADITIONAL_BASELINES",
    "GENERATIVE_BASELINES",
]

TRADITIONAL_BASELINES = (
    "Caser",
    "HGN",
    "GRU4Rec",
    "BERT4Rec",
    "SASRec",
    "FMLP-Rec",
    "FDSA",
    "S3-Rec",
)
GENERATIVE_BASELINES = ("P5-CID", "TIGER")

_DIM = 48


def baseline_model(name: str, dataset: SequentialDataset, seed: int = 0):
    """Instantiate a traditional baseline by its paper name."""
    n = dataset.num_items
    subs = dataset.catalog.subcategories()
    num_subs = dataset.catalog.num_subcategories
    max_len = dataset.config.max_seq_len
    factories: dict[str, Callable] = {
        "Caser": lambda: Caser(n, dim=_DIM, max_len=max_len, seed=seed),
        "HGN": lambda: HGN(n, dim=_DIM, max_len=max_len, seed=seed),
        "GRU4Rec": lambda: GRU4Rec(n, dim=_DIM, max_len=max_len, seed=seed),
        "BERT4Rec": lambda: BERT4Rec(n, dim=_DIM, max_len=max_len, seed=seed),
        "SASRec": lambda: SASRec(n, dim=_DIM, max_len=max_len, seed=seed),
        "FMLP-Rec": lambda: FMLP(n, dim=_DIM, max_len=max_len, seed=seed),
        "FDSA": lambda: FDSA(n, subs, num_subs, dim=_DIM, max_len=max_len, seed=seed),
        "S3-Rec": lambda: S3Rec(n, subs, num_subs, dim=_DIM, max_len=max_len, seed=seed),
    }
    if name not in factories:
        raise KeyError(f"unknown baseline {name!r}")
    return factories[name]()


def _eval_slice(dataset: SequentialDataset, scale: BenchScale):
    limit = scale.max_eval_users
    return (dataset.split.test_histories[:limit], dataset.split.test_targets[:limit])


def run_traditional_baseline(
    name: str, dataset: SequentialDataset, scale: BenchScale | None = None, seed: int = 0
) -> MetricReport:
    """Train one ID-based baseline and evaluate it with full ranking."""
    scale = scale or bench_scale()
    model = baseline_model(name, dataset, seed=seed)
    trainer = BaselineTrainer(
        BaselineTrainerConfig(epochs=scale.epochs(30), batch_size=64, seed=seed)
    )
    if name == "S3-Rec":
        model.pretrain(dataset)
    trainer.fit(model, dataset)
    histories, targets = _eval_slice(dataset, scale)
    return evaluate_score_model(model, histories, targets)


def run_generative_baseline(
    name: str, dataset: SequentialDataset, scale: BenchScale | None = None, seed: int = 0
) -> MetricReport:
    """Train TIGER or P5-CID and evaluate with constrained beam search."""
    scale = scale or bench_scale()
    if name == "TIGER":
        # TIGER's semantic IDs: RQ-VAE over LLM text embeddings with the
        # extra-level dedup (its original conflict handling, no USM).
        lcrec = LCRec(dataset, lcrec_config_for(dataset, scale, seed=seed))
        lcrec.build_vocabulary()
        lcrec.build_language_model()
        lcrec.build_item_embeddings()
        config = lcrec.config.indexer
        config.strategy = "extra_level"
        config.rqvae.input_dim = lcrec.item_embeddings.shape[1]
        from ..core.indexer import build_semantic_index_set

        index_set, _, _ = build_semantic_index_set(lcrec.item_embeddings, config)
        model = TIGER(index_set, TIGERConfig(dim=_DIM, epochs=scale.epochs(30), seed=seed))
        model.fit(dataset)
    elif name == "P5-CID":
        model = P5CID(dataset, P5CIDConfig(dim=_DIM, epochs=scale.epochs(30), seed=seed))
        model.fit(dataset)
    else:
        raise KeyError(f"unknown generative baseline {name!r}")

    histories, targets = _eval_slice(dataset, scale)
    if hasattr(model, "recommend_many"):
        # Both generative baselines decode through their serving-engine
        # adapters (TIGEREngine / P5CIDEngine): whole evaluation chunks
        # share one beam-expansion forward per trie level.
        return evaluate_generative_model_batched(
            lambda chunk: model.recommend_many(chunk, top_k=10), histories, targets
        )

    def recommend(history):
        return model.recommend(history, top_k=10)

    return evaluate_generative_model(recommend, histories, targets)


def lcrec_config_for(
    dataset: SequentialDataset,
    scale: BenchScale | None = None,
    tasks: tuple[str, ...] = ALL_TASKS,
    index_source: str = "semantic",
    indexing_strategy: str = "usm",
    seed: int = 0,
) -> LCRecConfig:
    """The benchmark LC-Rec configuration (scaled to the dataset size)."""
    scale = scale or bench_scale()
    codebook = 24 if dataset.num_items <= 300 else 32
    return LCRecConfig(
        lm=LMConfig(dim=64, num_layers=2, num_heads=4, ffn_hidden=176, max_seq_len=256),
        pretrain=PretrainConfig(
            steps=scale.epochs(400, minimum=100), batch_size=16, seq_len=64, seed=seed
        ),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(
                latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=codebook, seed=seed
            ),
            trainer=RQVAETrainerConfig(
                epochs=scale.epochs(150, minimum=50), batch_size=512, seed=seed
            ),
            strategy=indexing_strategy,
        ),
        tasks=AlignmentTaskConfig(tasks=tasks, max_history=10, seq_per_user=8, seed=seed),
        tuning=TuningConfig(
            epochs=scale.epochs(20, minimum=3), batch_size=16, lr=3e-3, max_len=220, seed=seed
        ),
        index_source=index_source,
        beam_size=20,
        seed=seed,
    )


def build_lcrec_model(
    dataset: SequentialDataset,
    scale: BenchScale | None = None,
    tasks: tuple[str, ...] = ALL_TASKS,
    index_source: str = "semantic",
    indexing_strategy: str = "usm",
    seed: int = 0,
) -> LCRec:
    """Build (pretrain + index + tune) an LC-Rec variant."""
    config = lcrec_config_for(
        dataset,
        scale,
        tasks=tasks,
        index_source=index_source,
        indexing_strategy=indexing_strategy,
        seed=seed,
    )
    return LCRec(dataset, config).build()


def evaluate_recommender(
    model: LCRec,
    dataset: SequentialDataset,
    scale: BenchScale | None = None,
    template_id: int = 0,
    batch_size: int = 16,
) -> MetricReport:
    """Full-ranking leave-one-out evaluation of an LC-Rec model.

    Users are decoded through the batched serving engine ``batch_size`` at
    a time (rankings are identical to per-user decoding).
    """
    scale = scale or bench_scale()
    histories, targets = _eval_slice(dataset, scale)

    def recommend_batch(batch):
        return model.recommend_many(batch, top_k=10, template_id=template_id)

    return evaluate_generative_model_batched(
        recommend_batch, histories, targets, batch_size=batch_size
    )


def evaluate_recommender_multi_template(
    model: LCRec,
    dataset: SequentialDataset,
    scale: BenchScale | None = None,
    template_ids: tuple[int, ...] = (0, 1, 2),
) -> MetricReport:
    """Average metrics over several instruction templates.

    This is the paper's exact Table III protocol: "The performance for our
    LC-Rec is average results from multiple instruction templates" — each
    template is evaluated independently and the metric values are averaged
    (no ensembling of rankings).
    """
    if not template_ids:
        raise ValueError("need at least one template id")
    reports = [evaluate_recommender(model, dataset, scale, template_id=t) for t in template_ids]
    keys = reports[0].values.keys()
    averaged = {key: float(np.mean([report[key] for report in reports])) for key in keys}
    return MetricReport(averaged)
