"""Benchmark harness: scaled experiment runners for every table/figure."""

from .config import BenchScale, bench_scale, scaled_dataset
from .runners import (
    baseline_model,
    build_lcrec_model,
    evaluate_recommender,
    evaluate_recommender_multi_template,
    lcrec_config_for,
    run_generative_baseline,
    run_traditional_baseline,
)
from .reporting import report, report_json

__all__ = [
    "BenchScale",
    "bench_scale",
    "scaled_dataset",
    "baseline_model",
    "run_traditional_baseline",
    "run_generative_baseline",
    "build_lcrec_model",
    "lcrec_config_for",
    "evaluate_recommender",
    "evaluate_recommender_multi_template",
    "report",
    "report_json",
]
