"""Benchmark result reporting: print and persist tables.

``pytest`` captures stdout, so every experiment table is also written to
``benchmarks/results/<name>.txt``; run pytest with ``-s`` to watch tables
stream live.
"""

from __future__ import annotations

import pathlib

__all__ = ["report", "results_dir"]


def results_dir() -> pathlib.Path:
    path = pathlib.Path(__file__).resolve()
    for parent in path.parents:
        if (parent / "pyproject.toml").exists():
            target = parent / "benchmarks" / "results"
            target.mkdir(parents=True, exist_ok=True)
            return target
    target = pathlib.Path.cwd() / "benchmark_results"
    target.mkdir(parents=True, exist_ok=True)
    return target


def report(name: str, text: str) -> pathlib.Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    print(f"\n===== {name} =====\n{text}\n")
    destination = results_dir() / f"{name}.txt"
    destination.write_text(text + "\n")
    return destination
