"""Benchmark result reporting: print and persist tables and JSON.

``pytest`` captures stdout, so every experiment table is also written to
``benchmarks/results/<name>.txt``; run pytest with ``-s`` to watch tables
stream live.  Serving benchmarks additionally persist a machine-readable
record via :func:`report_json` into the repo-root ``benchmark_results/``
directory — req/s, latency percentiles, the bench configuration and the
git revision — so the performance trajectory is trackable PR-over-PR (CI
parses the JSON and uploads it as an artifact).
"""

from __future__ import annotations

import json
import pathlib
import subprocess

__all__ = ["report", "report_json", "results_dir", "benchmark_results_dir", "git_sha"]


def _repo_root() -> pathlib.Path | None:
    path = pathlib.Path(__file__).resolve()
    for parent in path.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return None


def results_dir() -> pathlib.Path:
    root = _repo_root()
    target = (root / "benchmarks" / "results") if root else pathlib.Path.cwd() / "benchmark_results"
    target.mkdir(parents=True, exist_ok=True)
    return target


def benchmark_results_dir() -> pathlib.Path:
    """The repo-root ``benchmark_results/`` directory (tracked artifacts)."""
    root = _repo_root()
    target = (root / "benchmark_results") if root else pathlib.Path.cwd() / "benchmark_results"
    target.mkdir(parents=True, exist_ok=True)
    return target


def git_sha() -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    root = _repo_root()
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or pathlib.Path.cwd(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def report(name: str, text: str) -> pathlib.Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    print(f"\n===== {name} =====\n{text}\n")
    destination = results_dir() / f"{name}.txt"
    destination.write_text(text + "\n")
    return destination


def report_json(name: str, config: dict, results) -> pathlib.Path:
    """Persist a machine-readable bench record to ``benchmark_results/``.

    The payload schema every serving bench shares::

        {
          "bench":   "<name>",
          "git_sha": "<revision the numbers were measured at>",
          "config":  {...workload knobs: widths, request counts, scale...},
          "results": [...one entry per measured configuration, typically
                      {"name", "requests_per_second", "p50_ms", "p95_ms"}
                      plus bench-specific fields...]
        }

    ``docs/performance.md`` documents how to read these records.
    """
    payload = {"bench": name, "git_sha": git_sha(), "config": config, "results": results}
    destination = benchmark_results_dir() / f"{name}.json"
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return destination
