"""Pairwise choosers for the Table V discrimination task.

Each chooser maps ``(history, candidate_a, candidate_b) -> chosen item``:

* :func:`score_model_chooser` — a trained score-based recommender
  (SASRec row);
* :func:`lcrec_index_chooser` — tuned LC-Rec comparing the length-
  normalised log-likelihood of the two candidates' *item indices*;
* :func:`lcrec_title_chooser` — "LC-Rec (Title)": the same tuned model but
  scoring candidate *titles* (via the asymmetric-prediction head);
* :func:`pretrained_lm_chooser` — a language-only LM prompted with the
  title history (the "LLaMA" / "ChatGPT" rows: no collaborative signal).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.lcrec import LCRec
from ..data import ItemCatalog
from ..llm import TinyLlama, sequence_logprob
from ..text import WordTokenizer

__all__ = [
    "score_model_chooser", "lcrec_index_chooser", "lcrec_title_chooser", "pretrained_lm_chooser"
]

Chooser = Callable[[Sequence[int], int, int], int]

_TITLE_PROMPT = (
    "the user bought the following items in order : {history} . "
    "the next item the user needs is called answer :"
)


def score_model_chooser(model) -> Chooser:
    """Choose by the score model's logits over the two candidates."""

    def choose(history, candidate_a, candidate_b):
        scores = model.score_all([list(history)])[0]
        if scores[candidate_a] >= scores[candidate_b]:
            return candidate_a
        return candidate_b

    return choose


def lcrec_index_chooser(model: LCRec) -> Chooser:
    """Tuned LC-Rec scoring candidate item *indices* (the LC-Rec row)."""

    def choose(history, candidate_a, candidate_b):
        instruction = model.seq_instruction(list(history))
        score_a = model.response_logprob(
            instruction, model.index_set.index_text(candidate_a))
        score_b = model.response_logprob(
            instruction, model.index_set.index_text(candidate_b))
        return candidate_a if score_a >= score_b else candidate_b

    return choose


def lcrec_title_chooser(model: LCRec) -> Chooser:
    """Tuned LC-Rec scoring candidate *titles* ("LC-Rec (Title)")."""
    from ..core import templates as T

    def choose(history, candidate_a, candidate_b):
        history = list(history)[-model.config.tasks.max_history:]
        history_text = " , ".join(model.index_set.index_text(i) for i in history)
        instruction = T.ASY_INDEX_TO_TITLE_TEMPLATES[0].format(
            history=history_text)
        score_a = model.response_logprob(
            instruction, model.dataset.catalog[candidate_a].title)
        score_b = model.response_logprob(
            instruction, model.dataset.catalog[candidate_b].title)
        return candidate_a if score_a >= score_b else candidate_b

    return choose


def pretrained_lm_chooser(
    lm: TinyLlama, tokenizer: WordTokenizer, catalog: ItemCatalog, max_history: int = 8
) -> Chooser:
    """A language-only LM prompted with the title history.

    Mirrors zero-shot LLaMA / ChatGPT usage: user behaviour is verbalised
    as a title sequence and the model picks the likelier next title.
    """

    def choose(history, candidate_a, candidate_b):
        titles = " , ".join(catalog[i].title
                            for i in list(history)[-max_history:])
        prompt = tokenizer.encode(_TITLE_PROMPT.format(history=titles))
        prompt = [tokenizer.vocab.bos_id] + prompt
        score_a = sequence_logprob(
            lm, prompt, tokenizer.encode(catalog[candidate_a].title))
        score_b = sequence_logprob(
            lm, prompt, tokenizer.encode(catalog[candidate_b].title))
        return candidate_a if score_a >= score_b else candidate_b

    return choose
